//! The FAASM runtime instance: one per host (Fig. 5).
//!
//! Each instance owns a pool of warm Faaslets, a local scheduler fed by the
//! message bus, worker threads that execute calls, the host's local state
//! tier and filesystem, and the host-wide CPU cgroup. Instances coordinate
//! only through the global tier (warm sets) and the fabric (shared calls and
//! results) — the distributed shared-state scheduling of §5.1.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use faasm_fvm::Linker;
use faasm_kvs::{
    chunk_key, manifest_key, CacheConfig, CachedKv, Digest, RoutingCell, ShardedKvClient, SharedKv,
};
use faasm_net::{Fabric, HostId, Nic};
use faasm_sched::{
    decide, CallId, CallResult, CallSpec, Decision, Placement, SchedBoards, WarmSets,
};
use faasm_state::StateManager;
use faasm_telemetry::{SpanKind, TraceCtx};
use faasm_vfs::{HostFs, ObjectStore};
use parking_lot::{Condvar, Mutex, RwLock};

use crate::cgroup::CgroupCpu;
use crate::ctx::ChainRouter;
use crate::error::CoreError;
use crate::faaslet::{EgressLimit, Faaslet, FaasletEnv};
use crate::guest::{FunctionRegistry, GuestCode};
use crate::hostfuncs::faaslet_linker;
use crate::metrics::{Metrics, StartKind};
use crate::msg::{decode_msg, encode_msg, InstanceMsg};
use crate::pending::{Pending, PendingCallback};
use crate::proto::{ProtoFaaslet, ProtoRef};
use crate::snapdist::{
    assemble_proto, chunk_proto, ProtoManifest, SnapStatsSnapshot, SnapshotCache,
    DEFAULT_SNAPSHOT_CACHE_BYTES,
};

/// Instance tuning knobs.
#[derive(Debug, Clone)]
pub struct InstanceConfig {
    /// Worker threads (the instance's execution capacity).
    pub workers: usize,
    /// Fuel tolerance for the CPU cgroup (how far a Faaslet may run ahead).
    pub cgroup_tolerance: u64,
    /// Per-Faaslet egress shaping, if any.
    pub egress: Option<EgressLimit>,
    /// State chunk size for the local tier.
    pub chunk_size: usize,
    /// Worker thread stack size (guest recursion uses the host stack).
    pub worker_stack: usize,
    /// Function-side state cache over the global tier (`None` = every read
    /// rides the wire, the pre-cache behaviour). When set, the instance's
    /// `SharedKv` is a [`CachedKv`] and workers feed the scheduler's
    /// state-affinity board from per-call cache hits.
    pub cache: Option<CacheConfig>,
    /// Byte budget for the host's snapshot chunk cache (verified
    /// content-addressed proto chunks, LRU-evicted).
    pub snapshot_cache_bytes: usize,
}

impl Default for InstanceConfig {
    fn default() -> InstanceConfig {
        InstanceConfig {
            workers: 4,
            cgroup_tolerance: 1 << 22,
            egress: None,
            chunk_size: faasm_state::DEFAULT_CHUNK_SIZE,
            worker_stack: 16 * 1024 * 1024,
            cache: None,
            snapshot_cache_bytes: DEFAULT_SNAPSHOT_CACHE_BYTES,
        }
    }
}

#[derive(Debug)]
struct QueuedCall {
    call: CallSpec,
    reply_to: HostId,
}

/// One pre-placed call in a [`FaasmInstance::submit_placed_batch`], with
/// its completion hook: `on_complete` is invoked exactly once with the
/// terminal result, from whichever thread produced it.
pub struct PlacedCall {
    /// Owning tenant.
    pub user: String,
    /// Function name.
    pub function: String,
    /// Input bytes.
    pub input: Vec<u8>,
    /// The ingress call's trace context ([`TraceCtx::NONE`] when
    /// untraced) — carried into the batched [`CallSpec`] so every stage
    /// downstream of placement links back to the same trace.
    pub trace: TraceCtx,
    /// Completion callback (no thread parks per in-flight call).
    pub on_complete: PendingCallback<CallResult>,
}

impl std::fmt::Debug for PlacedCall {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlacedCall")
            .field("user", &self.user)
            .field("function", &self.function)
            .field("input_len", &self.input.len())
            .finish()
    }
}

/// One FAASM runtime instance.
pub struct FaasmInstance {
    host_id: HostId,
    nic: Nic,
    kv: SharedKv,
    /// The function-side state cache, when enabled — the same object `kv`
    /// points at, kept concretely typed for stats and hot-key draining.
    cache: Option<Arc<CachedKv>>,
    /// The raw sharded tier client, *under* any function-side cache: the
    /// snapshot plane's chunk traffic rides this so immutable chunk bytes
    /// are not double-buffered through the state cache (the
    /// [`SnapshotCache`] is their host-local home).
    tier_kv: SharedKv,
    /// Host-local cache of verified content-addressed proto chunks.
    snap_cache: Arc<SnapshotCache>,
    /// Single-flight proto resolution: one leader per `(user, function)`
    /// fetches or captures while concurrent cold starts park.
    resolving: Mutex<HashMap<(String, String), Arc<Flight>>>,
    /// Hands pre-stage manifests to the dedicated fetch thread so the bus
    /// loop never blocks on chunk round-trips.
    prestage_tx: Sender<(String, String, Vec<u8>)>,
    boards: Arc<SchedBoards>,
    state: Arc<StateManager>,
    hostfs: Arc<HostFs>,
    registry: Arc<FunctionRegistry>,
    warm: WarmSets,
    cgroup: Arc<CgroupCpu>,
    linker: Arc<Linker>,
    pool: Mutex<HashMap<(String, String), Vec<Faaslet>>>,
    busy: Mutex<HashMap<(String, String), usize>>,
    queue_tx: Sender<QueuedCall>,
    queue_rx: Receiver<QueuedCall>,
    pending: Arc<Pending>,
    protos: RwLock<HashMap<(String, String), ProtoRef>>,
    metrics: Arc<Metrics>,
    next_faaslet: AtomicU64,
    call_seq: Arc<AtomicU64>,
    rotation: AtomicUsize,
    stop: Arc<AtomicBool>,
    /// Orders batch submits against shutdown: submitters hold a read guard
    /// across their stop-check + send, and shutdown barriers on the write
    /// side after setting `stop` — so every message a submitter managed to
    /// send is already in the NIC queue when shutdown's drain runs, and
    /// every later submitter observes `stop` and fails fast. Without this,
    /// a submitter descheduled between check and send could land a batch
    /// nobody will ever answer.
    shutdown_gate: RwLock<()>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    config: InstanceConfig,
}

impl std::fmt::Debug for FaasmInstance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaasmInstance")
            .field("host", &self.host_id)
            .field("workers", &self.config.workers)
            .finish()
    }
}

impl FaasmInstance {
    /// Start an instance on a new fabric host. `routing` is the global
    /// tier's live routing cell: the instance routes every state key to its
    /// owning shard under the published epoch, and transparently follows
    /// epoch changes when the tier reshards.
    pub fn start(
        fabric: &Fabric,
        routing: &Arc<RoutingCell>,
        object_store: Arc<ObjectStore>,
        registry: Arc<FunctionRegistry>,
        call_seq: Arc<AtomicU64>,
        boards: Arc<SchedBoards>,
        config: InstanceConfig,
    ) -> Arc<FaasmInstance> {
        let nic = fabric.add_host();
        let sharded: SharedKv =
            Arc::new(ShardedKvClient::connect(nic.clone(), Arc::clone(routing)));
        // The snapshot plane keeps the uncached handle: chunk payloads are
        // content-addressed and live in the snapshot cache, so routing them
        // through the function-side cache would only duplicate them.
        let tier_kv = Arc::clone(&sharded);
        // The function-side cache interposes at the backend seam: state
        // entries, warm sets and workloads all read through it unchanged.
        let (kv, cache): (SharedKv, Option<Arc<CachedKv>>) = match &config.cache {
            Some(cc) => {
                let cached = Arc::new(CachedKv::new(sharded, cc.clone()));
                (Arc::clone(&cached) as SharedKv, Some(cached))
            }
            None => (sharded, None),
        };
        let state = Arc::new(StateManager::with_chunk_size(
            Arc::clone(&kv),
            config.chunk_size,
        ));
        let hostfs = HostFs::new(object_store);
        let warm = WarmSets::new(Arc::clone(&kv));
        let (queue_tx, queue_rx) = unbounded();
        let (prestage_tx, prestage_rx) = unbounded();
        let instance = Arc::new(FaasmInstance {
            host_id: nic.id(),
            nic,
            kv,
            cache,
            tier_kv,
            snap_cache: Arc::new(SnapshotCache::new(config.snapshot_cache_bytes)),
            resolving: Mutex::new(HashMap::new()),
            prestage_tx,
            boards,
            state,
            hostfs,
            registry,
            warm,
            cgroup: CgroupCpu::new(config.cgroup_tolerance),
            linker: Arc::new(faaslet_linker()),
            pool: Mutex::new(HashMap::new()),
            busy: Mutex::new(HashMap::new()),
            queue_tx,
            queue_rx,
            pending: Arc::new(Pending::default()),
            protos: RwLock::new(HashMap::new()),
            metrics: Arc::new(Metrics::new()),
            next_faaslet: AtomicU64::new(1),
            call_seq,
            rotation: AtomicUsize::new(0),
            stop: Arc::new(AtomicBool::new(false)),
            shutdown_gate: RwLock::new(()),
            threads: Mutex::new(Vec::new()),
            config,
        });

        // Message bus.
        {
            let inst = Arc::clone(&instance);
            let handle = std::thread::Builder::new()
                .name(format!("{}-bus", inst.host_id))
                .spawn(move || inst.bus_loop())
                .expect("spawn bus thread");
            instance.threads.lock().push(handle);
        }
        // Pre-stage fetcher: pulls pushed manifests' chunks into the
        // snapshot cache off the bus thread.
        {
            let inst = Arc::clone(&instance);
            let handle = std::thread::Builder::new()
                .name(format!("{}-prestage", inst.host_id))
                .spawn(move || inst.prestage_loop(prestage_rx))
                .expect("spawn prestage thread");
            instance.threads.lock().push(handle);
        }
        // Workers ("each function is executed by a dedicated thread").
        for w in 0..instance.config.workers {
            let inst = Arc::clone(&instance);
            let handle = std::thread::Builder::new()
                .name(format!("{}-worker{}", inst.host_id, w))
                .stack_size(instance.config.worker_stack)
                .spawn(move || inst.worker_loop())
                .expect("spawn worker thread");
            instance.threads.lock().push(handle);
        }
        instance.register_self();
        instance
    }

    /// This instance's host id on the fabric.
    pub fn host_id(&self) -> HostId {
        self.host_id
    }

    /// The host NIC.
    pub fn nic(&self) -> &Nic {
        &self.nic
    }

    /// The global-tier client.
    pub fn kv(&self) -> &SharedKv {
        &self.kv
    }

    /// The function-side state cache, when enabled.
    pub fn cache(&self) -> Option<&Arc<CachedKv>> {
        self.cache.as_ref()
    }

    /// The snapshot plane's per-instance counters (fetches, verify
    /// failures, publish dedup, cache evictions).
    pub fn snapshot_stats(&self) -> SnapStatsSnapshot {
        self.snap_cache.stats().snapshot()
    }

    /// Bytes currently held by the host's snapshot chunk cache.
    pub fn snapshot_cache_bytes(&self) -> usize {
        self.snap_cache.bytes()
    }

    /// Whether this host already holds an assembled proto for a function
    /// (restores from here are pure local CoW mappings).
    pub fn has_proto(&self, user: &str, function: &str) -> bool {
        self.protos
            .read()
            .contains_key(&(user.to_string(), function.to_string()))
    }

    /// The host's assembled proto serialised — for bitwise parity checks
    /// between a locally-captured and a chunk-fetched proto.
    #[cfg(test)]
    pub(crate) fn proto_bytes(&self, user: &str, function: &str) -> Option<Vec<u8>> {
        let proto = self
            .protos
            .read()
            .get(&(user.to_string(), function.to_string()))
            .cloned()?;
        proto.to_bytes().ok()
    }

    /// Push `function`'s chunk manifest to `target` over the bus — the
    /// autoscaler's pre-stage step: the receiver pulls the chunks into its
    /// snapshot cache *before* the first call lands, so its prewarmed
    /// Faaslets restore from warm bytes. Best-effort: `false` when no
    /// manifest is published yet or the send failed, which only costs the
    /// target the peer-fetch it would have saved.
    pub fn push_prestage(&self, user: &str, function: &str, target: HostId) -> bool {
        let Ok(Some(manifest)) = self.tier_kv.get(&manifest_key(user, function)) else {
            return false;
        };
        let msg = encode_msg(&InstanceMsg::PreStage {
            user: user.to_string(),
            function: function.to_string(),
            manifest,
        });
        self.nic.send(target, msg).is_ok()
    }

    /// The host's local state tier.
    pub fn state(&self) -> &Arc<StateManager> {
        &self.state
    }

    /// The host filesystem.
    pub fn hostfs(&self) -> &Arc<HostFs> {
        &self.hostfs
    }

    /// Runtime metrics.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Idle warm Faaslets for a function.
    pub fn warm_count(&self, user: &str, function: &str) -> usize {
        self.pool
            .lock()
            .get(&(user.to_string(), function.to_string()))
            .map_or(0, Vec::len)
    }

    /// Total Faaslets currently pooled (idle).
    pub fn pooled_faaslets(&self) -> usize {
        self.pool.lock().values().map(Vec::len).sum()
    }

    /// Aggregate host memory: Faaslet RSS + local state tier + file cache
    /// (the per-host footprint behind Fig. 6c and Tab. 3).
    pub fn host_memory_bytes(&self) -> usize {
        let pool_mem: usize = self
            .pool
            .lock()
            .values()
            .flat_map(|v| v.iter().map(Faaslet::rss_bytes))
            .sum();
        pool_mem + self.state.local_bytes() + self.hostfs.cached_bytes()
    }

    /// Evict all warm Faaslets for a function (scale-down / tests).
    pub fn evict(&self, user: &str, function: &str) {
        let key = (user.to_string(), function.to_string());
        self.pool.lock().remove(&key);
        let _ = self.warm.deregister(user, function, self.host_id);
    }

    /// Depth of this host's local run queue — calls accepted but not yet
    /// executing. The backpressure signal read by the scheduler and by the
    /// ingress tier when placing batches.
    pub fn queue_depth(&self) -> usize {
        self.queue_rx.len()
    }

    /// Pre-warm up to `count` Faaslets for a function into the idle pool
    /// (the autoscaler hook): each is built through the normal Proto-Faaslet
    /// restore / cold-start path without running a call, so a later burst
    /// hits only warm starts. Returns how many were created.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownFunction`] or Faaslet construction errors, only
    /// when nothing could be built; a partial batch is reported as
    /// `Ok(created)` and the host is registered warm for what it did build.
    pub fn prewarm(
        self: &Arc<Self>,
        user: &str,
        function: &str,
        count: usize,
    ) -> Result<usize, CoreError> {
        let key = (user.to_string(), function.to_string());
        let mut created = 0;
        let mut first_err = None;
        for _ in 0..count {
            match self.build_faaslet(&key) {
                Ok(faaslet) => {
                    self.pool
                        .lock()
                        .entry(key.clone())
                        .or_default()
                        .push(faaslet);
                    created += 1;
                }
                Err(e) => {
                    first_err = Some(e);
                    break;
                }
            }
        }
        if created > 0 {
            let _ = self.warm.register(user, function, self.host_id);
        }
        match first_err {
            Some(e) if created == 0 => Err(e),
            _ => Ok(created),
        }
    }

    /// Retire up to `count` idle Faaslets for a function from the pool (the
    /// autoscaler's scale-down hook). Deregisters from the global warm set
    /// when the pool empties. Returns how many were dropped.
    pub fn retire_idle(&self, user: &str, function: &str, count: usize) -> usize {
        let key = (user.to_string(), function.to_string());
        let mut pool = self.pool.lock();
        let Some(idle) = pool.get_mut(&key) else {
            return 0;
        };
        let n = count.min(idle.len());
        if n == 0 {
            // Checkout leaves empty entries behind; retiring nothing must
            // not deregister a host whose Faaslets are merely all busy.
            return 0;
        }
        idle.truncate(idle.len() - n);
        let emptied = idle.is_empty();
        if emptied {
            pool.remove(&key);
        }
        drop(pool);
        if emptied {
            let _ = self.warm.deregister(user, function, self.host_id);
        }
        n
    }

    /// The environment used to build Faaslets on this host.
    fn env(self: &Arc<Self>) -> FaasletEnv {
        FaasletEnv {
            state: Arc::clone(&self.state),
            hostfs: Arc::clone(&self.hostfs),
            nic: self.nic.clone(),
            router: Arc::clone(self) as Arc<dyn ChainRouter>,
            cgroup: Arc::clone(&self.cgroup),
            linker: Arc::clone(&self.linker),
            egress: self.config.egress,
        }
    }

    fn bus_loop(self: Arc<Self>) {
        while !self.stop.load(Ordering::Relaxed) {
            match self.nic.recv_timeout(Duration::from_millis(20)) {
                Ok(env) => match decode_msg(&env.payload) {
                    Some(InstanceMsg::Invoke {
                        call,
                        reply_to,
                        forwarded,
                    }) => self.handle_invoke(call, reply_to, forwarded),
                    Some(InstanceMsg::Result { result }) => self.pending.fulfill(result),
                    // Batched calls were already placed by an ingress tier:
                    // queue them all, skipping the local scheduling decision
                    // (like forwarded calls — re-deciding would fight the
                    // placement that chose this host).
                    Some(InstanceMsg::InvokeBatch {
                        calls,
                        reply_to,
                        sent_at_ns,
                    }) => {
                        let recorder = worker_recorder();
                        for call in calls {
                            if sent_at_ns != 0 && !call.trace.is_none() {
                                // One bus-transit span per call: encode +
                                // send + fabric queueing + decode, measured
                                // against the sender's stamp.
                                recorder.span(SpanKind::BusTransit, call.trace, sent_at_ns, 0);
                            }
                            let _ = self.queue_tx.send(QueuedCall { call, reply_to });
                        }
                    }
                    // Pre-staged manifests are handed to the dedicated
                    // fetcher; the bus loop stays hot for invokes.
                    Some(InstanceMsg::PreStage {
                        user,
                        function,
                        manifest,
                    }) => {
                        let _ = self.prestage_tx.send((user, function, manifest));
                    }
                    // Non-protocol traffic (e.g. a guest socket aimed at a
                    // runtime host) is dropped.
                    None => {}
                },
                Err(faasm_net::NetError::Timeout) => {}
                Err(_) => break,
            }
        }
    }

    /// The local scheduling decision (§5.1).
    fn handle_invoke(self: &Arc<Self>, call: CallSpec, reply_to: HostId, forwarded: bool) {
        let key = (call.user.clone(), call.function.clone());
        if forwarded {
            // Shared calls execute here — one hop maximum.
            let _ = self.queue_tx.send(QueuedCall { call, reply_to });
            return;
        }
        let idle = self.pool.lock().get(&key).map_or(0, Vec::len);
        let busy = self.busy.lock().get(&key).copied().unwrap_or(0);
        let warm_hosts = self
            .warm
            .hosts(&call.user, &call.function)
            .unwrap_or_default();
        // Publish our depth and read the peers' from the boards, so a
        // forward lands on the least-loaded warm peer — nudged toward
        // peers whose state caches already hold this function's keys.
        self.boards.publish_depth(self.host_id, self.queue_rx.len());
        let peer_depths = self.boards.depths(&warm_hosts);
        let peer_affinity = self
            .boards
            .affinities(&call.user, &call.function, &warm_hosts);
        let placement = decide(&Decision {
            this_host: self.host_id,
            warm_local: idle + busy,
            idle_local: idle,
            warm_hosts: &warm_hosts,
            queue_depth: self.queue_rx.len(),
            seed: self.rotation.fetch_add(1, Ordering::Relaxed),
            peer_depths: &peer_depths,
            peer_affinity: &peer_affinity,
        });
        match placement {
            Placement::WarmLocal | Placement::ColdStartLocal => {
                let _ = self.queue_tx.send(QueuedCall { call, reply_to });
            }
            Placement::Forward(other) => {
                let msg = encode_msg(&InstanceMsg::Invoke {
                    call: call.clone(),
                    reply_to,
                    forwarded: true,
                });
                if self.nic.send(other, msg).is_ok() {
                    // Counted only after the send succeeds: a vanished peer
                    // forwards nothing ("stats measured, not modelled").
                    self.metrics.record_forward();
                } else {
                    // Peer vanished: run it here after all.
                    let _ = self.queue_tx.send(QueuedCall { call, reply_to });
                }
            }
        }
    }

    fn worker_loop(self: Arc<Self>) {
        while !self.stop.load(Ordering::Relaxed) {
            match self.queue_rx.recv_timeout(Duration::from_millis(20)) {
                Ok(q) => self.execute(q),
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
            }
        }
    }

    fn execute(self: &Arc<Self>, q: QueuedCall) {
        let key = (q.call.user.clone(), q.call.function.clone());
        let faaslet = self.checkout(&key);
        let mut faaslet = match faaslet {
            Ok(f) => f,
            Err(e) => {
                self.deliver(CallResult::error(q.call.id, e.to_string()), q.reply_to);
                return;
            }
        };
        *self.busy.lock().entry(key.clone()).or_insert(0) += 1;

        let t0 = Instant::now();
        let start_ns = faasm_telemetry::now_ns();
        // The worker-exec span is allocated *before* the run and installed
        // as the thread's active context, so every state pull/push, lock
        // wait and KVS request the Faaslet issues nests under it.
        let exec_ctx = q.call.trace.child();
        // With a state cache, collect which keys the call's cache hits
        // touched: the per-function working set feeds the affinity board.
        let touch = self.cache.as_ref().map(|_| faasm_kvs::cache::touch_scope());
        let result = {
            let _tracing = faasm_telemetry::set_current(exec_ctx);
            faaslet.run(&q.call)
        };
        if let Some(scope) = touch {
            let touched = scope.finish();
            if !touched.is_empty() {
                self.boards
                    .report_affinity(&q.call.user, &q.call.function, self.host_id, &touched);
            }
        }
        self.boards.publish_depth(self.host_id, self.queue_rx.len());
        let exec_ns = t0.elapsed().as_nanos() as u64;
        if !exec_ctx.is_none() {
            worker_recorder().record(faasm_telemetry::SpanRecord {
                trace_id: exec_ctx.trace_id,
                span_id: exec_ctx.span_id,
                parent_id: q.call.trace.span_id,
                kind: SpanKind::WorkerExec,
                start_ns,
                end_ns: faasm_telemetry::now_ns(),
                extra: q.call.id.0,
            });
        }
        self.metrics.record_call(
            exec_ns,
            faaslet.fuel_consumed(),
            faaslet.instrs_retired(),
            faaslet.pss_bytes(),
        );

        if let Some(b) = self.busy.lock().get_mut(&key) {
            *b = b.saturating_sub(1);
        }

        // Reset-after-call (multi-tenant hygiene, §5.2), then return to the
        // warm pool and register in the global warm set.
        let def = self.registry.get(&q.call.user, &q.call.function);
        let reset_ok = match def {
            Some(def) if def.reset_after_call => match &def.code {
                GuestCode::Fvm(_) => {
                    let proto = self.protos.read().get(&key).cloned();
                    faaslet.reset(proto.as_deref()).is_ok()
                }
                GuestCode::Native(_) => faaslet.reset(None).is_ok(),
            },
            _ => true,
        };
        if reset_ok {
            self.pool
                .lock()
                .entry(key.clone())
                .or_default()
                .push(faaslet);
            let _ = self
                .warm
                .register(&q.call.user, &q.call.function, self.host_id);
        }
        self.deliver(result, q.reply_to);
    }

    /// Obtain a Faaslet: warm pool first, then Proto-Faaslet restore, then
    /// full cold start (which also generates the function's proto).
    fn checkout(self: &Arc<Self>, key: &(String, String)) -> Result<Faaslet, CoreError> {
        if let Some(f) = self.pool.lock().get_mut(key).and_then(Vec::pop) {
            self.metrics.record_start(StartKind::Warm, 0);
            return Ok(f);
        }
        self.build_faaslet(key)
    }

    /// Build a fresh Faaslet (proto restore or cold start), bypassing the
    /// pool. Shared by the call path ([`checkout`](Self::checkout)) and the
    /// autoscaler's [`prewarm`](Self::prewarm).
    fn build_faaslet(self: &Arc<Self>, key: &(String, String)) -> Result<Faaslet, CoreError> {
        let def = self
            .registry
            .get(&key.0, &key.1)
            .ok_or_else(|| CoreError::UnknownFunction {
                user: key.0.clone(),
                function: key.1.clone(),
            })?;
        let id = self.next_faaslet.fetch_add(1, Ordering::Relaxed);
        let env = self.env();

        match &def.code {
            GuestCode::Native(_) => {
                let t0 = Instant::now();
                let f = Faaslet::create_cold(id, &key.0, &key.1, def, &env)?;
                self.metrics
                    .record_start(StartKind::Cold, t0.elapsed().as_nanos() as u64);
                Ok(f)
            }
            GuestCode::Fvm(_) => loop {
                // Resolve order (§5.2 at cluster scale): assembled proto on
                // this host → chunk fetch through the snapshot plane → cold
                // start. The expensive steps are single-flight per function:
                // one leader fetches or captures while concurrent cold
                // starts park, so a barrier-released burst costs exactly one
                // capture.
                if let Some(proto) = self.protos.read().get(key).cloned() {
                    let s0 = faasm_telemetry::now_ns();
                    let t0 = Instant::now();
                    let f = Faaslet::restore(id, &proto, def, &env)?;
                    self.metrics
                        .record_start(StartKind::ProtoRestore, t0.elapsed().as_nanos() as u64);
                    let ctx = faasm_telemetry::current();
                    if !ctx.is_none() {
                        worker_recorder().span(SpanKind::ProtoRestore, ctx, s0, 0);
                    }
                    return Ok(f);
                }
                let flight = {
                    let mut resolving = self.resolving.lock();
                    match resolving.get(key) {
                        Some(f) => Some(Arc::clone(f)),
                        None => {
                            resolving.insert(key.clone(), Arc::new(Flight::new()));
                            None
                        }
                    }
                };
                if let Some(flight) = flight {
                    // Another resolver is fetching or capturing this
                    // function's proto: park until it settles, then
                    // re-resolve (usually a pure CoW restore).
                    flight.wait();
                    continue;
                }
                // Leader. The guard wakes every parked resolver when this
                // attempt ends by any path, including errors.
                let _flight = FlightGuard {
                    instance: self,
                    key,
                };
                if self.protos.read().contains_key(key) {
                    // A pre-stage or a just-finished leader landed between
                    // the resolve check and leadership.
                    continue;
                }
                if let Some(proto) = self.fetch_proto(key) {
                    self.protos.write().insert(key.clone(), proto);
                    continue;
                }
                // First cold start anywhere: instantiate, run init, capture
                // and publish the proto (§5.2: generated as part of upload /
                // first use, stored for cross-host restores).
                let t0 = Instant::now();
                let mut f = Faaslet::create_cold(id, &key.0, &key.1, def, &env)?;
                self.metrics
                    .record_start(StartKind::Cold, t0.elapsed().as_nanos() as u64);
                if let Some(proto) = f.capture_proto() {
                    let proto = Arc::new(proto);
                    self.publish_proto(key, &proto);
                    self.protos.write().insert(key.clone(), proto);
                }
                return Ok(f);
            },
        }
    }

    /// Fetch a function's proto through the snapshot plane: manifest from
    /// the tier, then cache-checked chunk reads. `None` when nothing is
    /// published or the fetch failed — the caller cold-starts.
    fn fetch_proto(&self, key: &(String, String)) -> Option<ProtoRef> {
        let manifest_bytes = self.tier_kv.get(&manifest_key(&key.0, &key.1)).ok()??;
        let manifest = ProtoManifest::from_bytes(&manifest_bytes)?;
        let proto = self.fetch_by_manifest(&manifest)?;
        // The manifest key is the plane's only mutable key: a stale or
        // crossed write must never bind another function's proto here.
        if proto.user != key.0 || proto.function != key.1 {
            return None;
        }
        Some(proto)
    }

    /// Pull and verify every chunk a manifest names — local snapshot cache
    /// first, then one batched tier read for the rest — and assemble the
    /// proto. Verified bytes land in the cache on the way through.
    fn fetch_by_manifest(&self, manifest: &ProtoManifest) -> Option<ProtoRef> {
        let stats = self.snap_cache.stats();
        stats.fetches.fetch_add(1, Ordering::Relaxed);
        let s0 = faasm_telemetry::now_ns();
        let mut have: HashMap<Digest, Arc<Vec<u8>>> = HashMap::new();
        let mut missing: Vec<Digest> = Vec::new();
        for d in manifest.all_digests() {
            if have.contains_key(&d) || missing.contains(&d) {
                continue;
            }
            match self.snap_cache.get(&d) {
                Some(bytes) => {
                    stats.chunk_hits.fetch_add(1, Ordering::Relaxed);
                    have.insert(d, bytes);
                }
                None => missing.push(d),
            }
        }
        let mut complete = true;
        if !missing.is_empty() {
            let keys: Vec<String> = missing.iter().map(chunk_key).collect();
            let values = self.tier_kv.multi_get(&keys).ok()?;
            let v0 = faasm_telemetry::now_ns();
            for (d, value) in missing.iter().zip(values) {
                let Some(bytes) = value else {
                    // Chunk not in the tier (e.g. evicted, or the manifest
                    // raced ahead of its chunks): this fetch cold-starts.
                    complete = false;
                    continue;
                };
                if Digest::of(&bytes) != *d {
                    // A corrupt chunk must also be deleted, not just
                    // skipped: the publisher's exists-check would otherwise
                    // dedup against the bad bytes forever. Deleting lets
                    // the next publish repair it.
                    stats.verify_failures.fetch_add(1, Ordering::Relaxed);
                    let _ = self.tier_kv.del(&chunk_key(d));
                    complete = false;
                    continue;
                }
                stats.chunks_fetched.fetch_add(1, Ordering::Relaxed);
                let bytes = Arc::new(bytes);
                self.snap_cache.insert(*d, Arc::clone(&bytes));
                have.insert(*d, bytes);
            }
            let ctx = faasm_telemetry::current();
            if !ctx.is_none() {
                worker_recorder().span(SpanKind::SnapshotVerify, ctx, v0, missing.len() as u64);
            }
        }
        if !complete {
            return None;
        }
        let meta = have.get(&manifest.meta)?;
        let pages: Vec<Arc<Vec<u8>>> = manifest
            .pages
            .iter()
            .map(|d| have.get(d).map(Arc::clone))
            .collect::<Option<_>>()?;
        let proto = assemble_proto(meta, &pages)?;
        let ctx = faasm_telemetry::current();
        if !ctx.is_none() {
            worker_recorder().span(SpanKind::SnapshotFetch, ctx, s0, missing.len() as u64);
        }
        Some(Arc::new(proto))
    }

    /// Publish a captured proto as content-addressed chunks plus a manifest
    /// through the state tier. Chunks the tier already holds are skipped —
    /// pages identical across proto versions (or functions) ship once.
    /// Errors are swallowed: a failed publish only costs peers a cold
    /// start, never a corrupt restore (fetchers verify digests).
    fn publish_proto(&self, key: &(String, String), proto: &ProtoFaaslet) {
        let Ok(chunked) = chunk_proto(proto) else {
            // A snapshot section too large for the wire encoding stays
            // host-local: restores here still work from `protos`.
            return;
        };
        let stats = self.snap_cache.stats();
        for (d, bytes) in &chunked.chunks {
            let ck = chunk_key(d);
            if matches!(self.tier_kv.exists(&ck), Ok(true)) {
                stats.chunks_deduped.fetch_add(1, Ordering::Relaxed);
                stats
                    .bytes_deduped
                    .fetch_add(bytes.len() as u64, Ordering::Relaxed);
            } else if self.tier_kv.set(&ck, (**bytes).clone()).is_ok() {
                stats.chunks_published.fetch_add(1, Ordering::Relaxed);
                stats
                    .bytes_published
                    .fetch_add(bytes.len() as u64, Ordering::Relaxed);
            }
            // Seed the local cache either way: the publishing host is about
            // to be the hottest restorer of this function.
            self.snap_cache.insert(*d, Arc::clone(bytes));
        }
        let _ = self
            .tier_kv
            .set(&manifest_key(&key.0, &key.1), chunked.manifest.to_bytes());
    }

    fn prestage_loop(self: Arc<Self>, rx: Receiver<(String, String, Vec<u8>)>) {
        while !self.stop.load(Ordering::Relaxed) {
            match rx.recv_timeout(Duration::from_millis(20)) {
                Ok((user, function, manifest)) => self.handle_prestage(&user, &function, &manifest),
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
            }
        }
    }

    /// Handle a pushed pre-stage manifest: fetch its chunks into the
    /// snapshot cache and install the assembled proto, so the first call
    /// after a scale-up restores from warm local bytes.
    fn handle_prestage(&self, user: &str, function: &str, manifest_bytes: &[u8]) {
        self.snap_cache
            .stats()
            .prestages
            .fetch_add(1, Ordering::Relaxed);
        let Some(manifest) = ProtoManifest::from_bytes(manifest_bytes) else {
            return;
        };
        let key = (user.to_string(), function.to_string());
        if self.protos.read().contains_key(&key) {
            return;
        }
        if let Some(proto) = self.fetch_by_manifest(&manifest) {
            // A pushed manifest is unauthenticated bus traffic: the chunk
            // digests verified it byte-for-byte, but the decoded identity
            // must still match the key it claims to pre-stage.
            if proto.user == key.0 && proto.function == key.1 {
                self.protos.write().insert(key, proto);
            }
        }
    }

    fn deliver(&self, result: CallResult, reply_to: HostId) {
        if reply_to == self.host_id {
            self.pending.fulfill(result);
        } else {
            let msg = encode_msg(&InstanceMsg::Result { result });
            let _ = self.nic.send(reply_to, msg);
        }
    }

    /// Queue a call for execution on this instance, bypassing the local
    /// scheduling decision — for ingress tiers that already placed the call
    /// (the gateway scores hosts by warmth and queue depth before
    /// dispatching; re-running `decide` here would forward by bare rotation
    /// and fight that placement). Await with [`ChainRouter::await_call`].
    pub fn submit_placed(&self, user: &str, function: &str, input: Vec<u8>) -> CallId {
        let id = CallId(self.call_seq.fetch_add(1, Ordering::Relaxed));
        self.pending.register(id.0);
        let _ = self.queue_tx.send(QueuedCall {
            call: CallSpec {
                id,
                user: user.to_string(),
                function: function.to_string(),
                input,
                trace: faasm_telemetry::current(),
            },
            reply_to: self.host_id,
        });
        id
    }

    /// Queue `calls` for execution on this instance as **one bus message**
    /// ([`InstanceMsg::InvokeBatch`]), bypassing the local scheduling
    /// decision like [`submit_placed`](Self::submit_placed). Each call's
    /// `on_complete` is invoked exactly once with its terminal result, from
    /// the worker that produced it — no thread parks per in-flight call, so
    /// an ingress dispatcher can return to draining immediately.
    ///
    /// Returns the assigned call ids, in input order.
    pub fn submit_placed_batch(&self, calls: Vec<PlacedCall>) -> Vec<CallId> {
        let mut specs = Vec::with_capacity(calls.len());
        let mut ids = Vec::with_capacity(calls.len());
        for call in calls {
            let id = CallId(self.call_seq.fetch_add(1, Ordering::Relaxed));
            // A call whose encoding would wrap the batch codec's u32
            // length prefix corrupts the whole message (the receiver drops
            // it, losing every call in the batch): fail just this call
            // fast instead. 24 bytes cover the id and length prefixes.
            let encoded = call
                .user
                .len()
                .saturating_add(call.function.len())
                .saturating_add(call.input.len())
                .saturating_add(24);
            if encoded > u32::MAX as usize {
                (call.on_complete)(CallResult::error(id, "call too large for batch submit"));
                ids.push(id);
                continue;
            }
            // Register-before-fulfill: the callback must be in place before
            // any worker can deliver the result.
            self.pending.register_callback(id.0, call.on_complete);
            specs.push(CallSpec {
                id,
                user: call.user,
                function: call.function,
                input: call.input,
                trace: call.trace,
            });
            ids.push(id);
        }
        if specs.is_empty() {
            return ids;
        }
        let registered: Vec<CallId> = specs.iter().map(|s| s.id).collect();
        let msg = encode_msg(&InstanceMsg::InvokeBatch {
            calls: specs,
            reply_to: self.host_id,
            sent_at_ns: faasm_telemetry::now_ns(),
        });
        // One self-addressed bus message for the whole batch: N calls cost
        // one message-bus hop instead of N, and the fabric's byte counters
        // see the real coordination cost. The gate guarantees that if the
        // send happens, it happens before shutdown's drain (which will
        // answer it), and that a stop observed here is final.
        let failed = {
            let _submitting = self.shutdown_gate.read();
            self.stop.load(Ordering::Relaxed) || self.nic.send(self.host_id, msg).is_err()
        };
        if failed {
            // Instance shutting down or fabric host gone: the bus loop will
            // never queue these, so answer every registered callback now
            // (oversized calls were already answered above).
            for id in &registered {
                self.pending
                    .fulfill(CallResult::error(*id, "runtime shutting down"));
            }
        }
        ids
    }

    /// Direct (test/benchmark) entry: run a call on this instance and wait.
    pub fn invoke_local(
        self: &Arc<Self>,
        user: &str,
        function: &str,
        input: Vec<u8>,
    ) -> CallResult {
        let id = self.chain_call(user, function, input);
        self.await_call(id)
    }

    /// Stop threads and drop pooled Faaslets. Idempotent.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Relaxed);
        // Barrier against in-flight batch submitters: once the write guard
        // is acquired, every submitter has either finished its send (the
        // message is in the NIC queue, the drain below answers it) or will
        // observe `stop` under the read guard and fail its batch fast.
        drop(self.shutdown_gate.write());
        let handles: Vec<_> = self.threads.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
        // Answer everything the stopped threads will never execute: calls
        // still in the run queue, and bus messages the bus loop never
        // decoded. Without this, completion callbacks registered by batch
        // submitters never fire — a gateway would leak its in-flight slots
        // and wedge once enough accumulated.
        while let Ok(q) = self.queue_rx.try_recv() {
            self.deliver(
                CallResult::error(q.call.id, "runtime shutting down"),
                q.reply_to,
            );
        }
        while let Some(env) = self.nic.try_recv() {
            match decode_msg(&env.payload) {
                Some(InstanceMsg::Invoke { call, reply_to, .. }) => {
                    self.deliver(
                        CallResult::error(call.id, "runtime shutting down"),
                        reply_to,
                    );
                }
                Some(InstanceMsg::InvokeBatch {
                    calls, reply_to, ..
                }) => {
                    for call in calls {
                        self.deliver(
                            CallResult::error(call.id, "runtime shutting down"),
                            reply_to,
                        );
                    }
                }
                Some(InstanceMsg::Result { result }) => self.pending.fulfill(result),
                // Pre-stages are pure prefetch hints; nothing awaits them.
                Some(InstanceMsg::PreStage { .. }) => {}
                None => {}
            }
        }
        // Break the Arc cycle (pool faaslets hold the instance as router).
        self.pool.lock().clear();
        SELF_REGISTRY.lock().remove(&self.host_id);
    }
}

impl ChainRouter for FaasmInstance {
    fn chain_call(&self, user: &str, function: &str, input: Vec<u8>) -> CallId {
        let id = CallId(self.call_seq.fetch_add(1, Ordering::Relaxed));
        self.pending.register(id.0);
        let call = CallSpec {
            id,
            user: user.to_string(),
            function: function.to_string(),
            input,
            // Chained calls inherit the caller Faaslet's active context,
            // so a chain's workers all nest under the ingress trace.
            trace: faasm_telemetry::current(),
        };
        if let Some(me) = self.self_arc() {
            me.handle_invoke(call, self.host_id, false);
        } else {
            // The instance is being torn down; queue locally so the call
            // fails fast rather than vanishing.
            let _ = self.queue_tx.send(QueuedCall {
                call,
                reply_to: self.host_id,
            });
        }
        id
    }

    fn await_call(&self, id: CallId) -> CallResult {
        // Help execute pending work while waiting, so chains deeper than the
        // worker pool cannot deadlock. Requires Arc self for execute();
        // waiting paths that cannot help fall back to blocking.
        loop {
            if let Some(r) = self.pending.try_take(id.0) {
                return r;
            }
            if let Ok(q) = self.queue_rx.try_recv() {
                // Reconstruct an Arc to self for the execute path: the
                // instance is always owned by at least one Arc (the
                // cluster and its threads), so this is safe to require.
                // We use a small trampoline through the environment.
                if let Some(me) = self.self_arc() {
                    me.execute(q);
                    continue;
                }
                // No Arc available (cannot happen in practice): drop the
                // call back and block.
                let _ = self.queue_tx.send(q);
            }
            if let Some(r) = self.pending.wait(id.0, Duration::from_millis(1)) {
                return r;
            }
            if self.stop.load(Ordering::Relaxed) {
                return CallResult::error(id, "runtime shutting down");
            }
        }
    }
}

impl FaasmInstance {
    /// A weak-self registry so `await_call` (a `&self` trait method) can
    /// reach the `Arc<Self>`-requiring execute path.
    fn self_arc(&self) -> Option<Arc<FaasmInstance>> {
        SELF_REGISTRY
            .lock()
            .get(&self.host_id)
            .and_then(std::sync::Weak::upgrade)
    }

    pub(crate) fn register_self(self: &Arc<Self>) {
        SELF_REGISTRY
            .lock()
            .insert(self.host_id, Arc::downgrade(self));
    }
}

/// A single-flight slot: concurrent proto resolvers for one function park
/// here while a leader fetches or captures.
struct Flight {
    done: Mutex<bool>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Flight {
        Flight {
            done: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn wait(&self) {
        let mut done = self.done.lock();
        while !*done {
            self.cv.wait(&mut done);
        }
    }

    fn finish(&self) {
        *self.done.lock() = true;
        self.cv.notify_all();
    }
}

/// Ends a single-flight attempt: removes the slot and wakes every parked
/// resolver. A `Drop` guard so leader errors (and early `continue`s) can
/// never strand followers.
struct FlightGuard<'a> {
    instance: &'a FaasmInstance,
    key: &'a (String, String),
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        let flight = self.instance.resolving.lock().remove(self.key);
        if let Some(flight) = flight {
            flight.finish();
        }
    }
}

/// The runtime instances' telemetry recorder (one per process; cached so
/// bus and worker loops never touch the registry lock).
fn worker_recorder() -> &'static Arc<faasm_telemetry::Recorder> {
    static REC: std::sync::OnceLock<Arc<faasm_telemetry::Recorder>> = std::sync::OnceLock::new();
    REC.get_or_init(|| faasm_telemetry::tier("worker"))
}

static SELF_REGISTRY: once_registry::SelfRegistry = once_registry::SelfRegistry::new();

mod once_registry {
    use super::{FaasmInstance, HostId};
    use parking_lot::Mutex;
    use std::collections::HashMap;
    use std::sync::{OnceLock, Weak};

    /// Lazily-initialised weak-self registry (HashMap::new is not const).
    pub(super) struct SelfRegistry {
        inner: OnceLock<Mutex<HashMap<HostId, Weak<FaasmInstance>>>>,
    }

    impl SelfRegistry {
        pub(super) const fn new() -> SelfRegistry {
            SelfRegistry {
                inner: OnceLock::new(),
            }
        }

        pub(super) fn lock(
            &self,
        ) -> parking_lot::MutexGuard<'_, HashMap<HostId, Weak<FaasmInstance>>> {
            self.inner.get_or_init(|| Mutex::new(HashMap::new())).lock()
        }
    }
}
