//! The Faaslet host interface (Tab. 2) for FVM guests.
//!
//! Every row of the paper's host-interface table is implemented here as a
//! trusted thunk linked into guest modules at instantiation (§3.4). The
//! functions operate on the guest's linear memory and the Faaslet's
//! [`FaasletCtx`]; recoverable failures return `-1` to the guest (errno
//! style), while memory-safety violations and protocol abuse trap.
//!
//! Guest ABI summary (all imports under the `faasm` namespace):
//!
//! | class    | functions |
//! |----------|-----------|
//! | calls    | `input_size` `read_call_input` `write_call_output` `chain_call` `await_call` `get_call_output_size` `get_call_output` |
//! | state    | `get_state` `get_state_offset` `set_state` `set_state_offset` `push_state` `push_state_offset` `pull_state` `pull_state_offset` `append_state` `lock_state_read` `unlock_state_read` `lock_state_write` `unlock_state_write` `lock_state_global_read` `unlock_state_global_read` `lock_state_global_write` `unlock_state_global_write` |
//! | dynlink  | `dlopen` `dlsym` `dlcall` `dlclose` |
//! | memory   | `mmap` `munmap` `brk` `sbrk` |
//! | network  | `socket` `connect` `send` `recv` `sock_close` |
//! | file I/O | `open` `close` `dup` `read` `write` `seek` `stat_size` |
//! | misc     | `gettime` `getrandom` |

use faasm_fvm::{HostCtx, Instance, Linker, ObjectModule, Trap, Val};
use faasm_mem::LinearMemory;
use faasm_net::HostId;
use faasm_sched::CallId;
use faasm_vfs::{OpenFlags, Whence};

use crate::ctx::FaasletCtx;

/// Scratch base address used by the `dlcall` copy-in/copy-out convention.
pub const DL_BUF: u32 = 4096;

fn arg_i32(args: &[Val], i: usize) -> Result<i32, Trap> {
    args.get(i)
        .and_then(Val::as_i32)
        .ok_or_else(|| Trap::host(format!("host call argument {i} must be i32")))
}

fn arg_i64(args: &[Val], i: usize) -> Result<i64, Trap> {
    args.get(i)
        .and_then(Val::as_i64)
        .ok_or_else(|| Trap::host(format!("host call argument {i} must be i64")))
}

/// Split a [`HostCtx`] into the guest memory and the Faaslet context.
fn parts<'a>(ctx: &'a mut HostCtx<'_>) -> Result<(&'a mut LinearMemory, &'a mut FaasletCtx), Trap> {
    let mem = ctx
        .mem
        .as_deref_mut()
        .ok_or_else(|| Trap::host("host call requires guest memory"))?;
    let fctx = ctx
        .data
        .downcast_mut::<FaasletCtx>()
        .ok_or_else(|| Trap::host("instance data is not a FaasletCtx"))?;
    Ok((mem, fctx))
}

fn read_bytes(mem: &LinearMemory, ptr: i32, len: i32) -> Result<Vec<u8>, Trap> {
    let (ptr, len) = (ptr as u32, len as u32);
    let mut buf = vec![0u8; len as usize];
    mem.read(ptr as usize, &mut buf)
        .map_err(|_| Trap::OutOfBoundsMemory {
            addr: ptr as u64,
            len,
        })?;
    Ok(buf)
}

fn write_bytes(mem: &mut LinearMemory, ptr: i32, data: &[u8]) -> Result<(), Trap> {
    mem.write(ptr as u32 as usize, data)
        .map_err(|_| Trap::OutOfBoundsMemory {
            addr: ptr as u32 as u64,
            len: data.len() as u32,
        })
}

fn read_str(mem: &LinearMemory, ptr: i32, len: i32) -> Result<String, Trap> {
    String::from_utf8(read_bytes(mem, ptr, len)?)
        .map_err(|_| Trap::host("string argument is not valid UTF-8"))
}

fn ok_i32(v: i32) -> Result<Vec<Val>, Trap> {
    Ok(vec![Val::I32(v)])
}

fn ok_i64(v: i64) -> Result<Vec<Val>, Trap> {
    Ok(vec![Val::I64(v)])
}

/// Map a state entry's region into the guest and return its base address,
/// reusing an existing mapping when present.
fn map_state(
    mem: &mut LinearMemory,
    fctx: &mut FaasletCtx,
    key: &str,
    size: usize,
) -> Result<u32, Trap> {
    let entry = fctx.state_entry(key, size).map_err(Trap::host)?;
    let mapped = fctx
        .mapped_state
        .get_mut(key)
        .expect("state_entry registers the mapping");
    if mapped.guest_addr != 0 {
        return Ok(mapped.guest_addr);
    }
    let addr = mem
        .map_shared(entry.region())
        .map_err(|_| Trap::MemoryLimitExceeded)? as u32;
    mapped.guest_addr = addr;
    Ok(addr)
}

/// Build the host-interface linker shared by every Faaslet in the process.
#[allow(clippy::too_many_lines)]
pub fn faaslet_linker() -> Linker {
    let mut l = Linker::new();

    // ── Calls ──────────────────────────────────────────────────────────
    l.define_fn("faasm", "input_size", |ctx, _args| {
        let (_mem, fctx) = parts(ctx)?;
        ok_i32(fctx.input.len() as i32)
    });
    l.define_fn("faasm", "read_call_input", |ctx, args| {
        let (ptr, len) = (arg_i32(args, 0)?, arg_i32(args, 1)?);
        let (mem, fctx) = parts(ctx)?;
        let n = (len as usize).min(fctx.input.len());
        let data = fctx.input[..n].to_vec();
        write_bytes(mem, ptr, &data)?;
        ok_i32(n as i32)
    });
    l.define_fn("faasm", "write_call_output", |ctx, args| {
        let (ptr, len) = (arg_i32(args, 0)?, arg_i32(args, 1)?);
        let (mem, fctx) = parts(ctx)?;
        let data = read_bytes(mem, ptr, len)?;
        fctx.output.extend_from_slice(&data);
        Ok(vec![])
    });
    l.define_fn("faasm", "chain_call", |ctx, args| {
        let (np, nl, ip, il) = (
            arg_i32(args, 0)?,
            arg_i32(args, 1)?,
            arg_i32(args, 2)?,
            arg_i32(args, 3)?,
        );
        let (mem, fctx) = parts(ctx)?;
        let name = read_str(mem, np, nl)?;
        let input = read_bytes(mem, ip, il)?;
        let id = fctx.chain(&name, input);
        ok_i64(id.0 as i64)
    });
    l.define_fn("faasm", "await_call", |ctx, args| {
        let id = arg_i64(args, 0)?;
        let (_mem, fctx) = parts(ctx)?;
        let code = fctx.await_chained(CallId(id as u64));
        ok_i32(code)
    });
    l.define_fn("faasm", "get_call_output_size", |ctx, args| {
        let id = arg_i64(args, 0)?;
        let (_mem, fctx) = parts(ctx)?;
        let size = fctx
            .results
            .get(&CallId(id as u64))
            .map_or(-1, |r| r.output.len() as i32);
        ok_i32(size)
    });
    l.define_fn("faasm", "get_call_output", |ctx, args| {
        let (id, ptr, len) = (arg_i64(args, 0)?, arg_i32(args, 1)?, arg_i32(args, 2)?);
        let (mem, fctx) = parts(ctx)?;
        let Some(r) = fctx.results.get(&CallId(id as u64)) else {
            return ok_i32(-1);
        };
        let n = (len as usize).min(r.output.len());
        let data = r.output[..n].to_vec();
        write_bytes(mem, ptr, &data)?;
        ok_i32(n as i32)
    });

    // ── State ──────────────────────────────────────────────────────────
    l.define_fn("faasm", "get_state", |ctx, args| {
        let (kp, kl, size) = (arg_i32(args, 0)?, arg_i32(args, 1)?, arg_i32(args, 2)?);
        let (mem, fctx) = parts(ctx)?;
        let key = read_str(mem, kp, kl)?;
        let addr = map_state(mem, fctx, &key, size as usize)?;
        let entry = &fctx.mapped_state[&key].entry;
        entry.pull().map_err(Trap::host)?;
        ok_i32(addr as i32)
    });
    l.define_fn("faasm", "get_state_offset", |ctx, args| {
        let (kp, kl, size, off, len) = (
            arg_i32(args, 0)?,
            arg_i32(args, 1)?,
            arg_i32(args, 2)?,
            arg_i32(args, 3)?,
            arg_i32(args, 4)?,
        );
        let (mem, fctx) = parts(ctx)?;
        let key = read_str(mem, kp, kl)?;
        let addr = map_state(mem, fctx, &key, size as usize)?;
        let entry = &fctx.mapped_state[&key].entry;
        entry
            .pull_range(off as usize, len as usize)
            .map_err(Trap::host)?;
        ok_i32((addr + off as u32) as i32)
    });
    l.define_fn("faasm", "set_state", |ctx, args| {
        let (kp, kl, vp, vl) = (
            arg_i32(args, 0)?,
            arg_i32(args, 1)?,
            arg_i32(args, 2)?,
            arg_i32(args, 3)?,
        );
        let (mem, fctx) = parts(ctx)?;
        let key = read_str(mem, kp, kl)?;
        let value = read_bytes(mem, vp, vl)?;
        let entry = fctx.state_entry(&key, value.len()).map_err(Trap::host)?;
        entry.write(0, &value).map_err(Trap::host)?;
        Ok(vec![])
    });
    l.define_fn("faasm", "set_state_offset", |ctx, args| {
        let (kp, kl, size, off, vp, vl) = (
            arg_i32(args, 0)?,
            arg_i32(args, 1)?,
            arg_i32(args, 2)?,
            arg_i32(args, 3)?,
            arg_i32(args, 4)?,
            arg_i32(args, 5)?,
        );
        let (mem, fctx) = parts(ctx)?;
        let key = read_str(mem, kp, kl)?;
        let value = read_bytes(mem, vp, vl)?;
        let entry = fctx.state_entry(&key, size as usize).map_err(Trap::host)?;
        entry.write(off as usize, &value).map_err(Trap::host)?;
        Ok(vec![])
    });
    l.define_fn("faasm", "push_state", |ctx, args| {
        let (kp, kl) = (arg_i32(args, 0)?, arg_i32(args, 1)?);
        let (mem, fctx) = parts(ctx)?;
        let key = read_str(mem, kp, kl)?;
        let entry = fctx
            .mapped_state
            .get(&key)
            .map(|m| std::sync::Arc::clone(&m.entry))
            .ok_or_else(|| Trap::host(format!("push_state before get_state: {key}")))?;
        entry.push_full().map_err(Trap::host)?;
        Ok(vec![])
    });
    l.define_fn("faasm", "push_state_offset", |ctx, args| {
        let (kp, kl, off, len) = (
            arg_i32(args, 0)?,
            arg_i32(args, 1)?,
            arg_i32(args, 2)?,
            arg_i32(args, 3)?,
        );
        let (mem, fctx) = parts(ctx)?;
        let key = read_str(mem, kp, kl)?;
        let entry = fctx
            .mapped_state
            .get(&key)
            .map(|m| std::sync::Arc::clone(&m.entry))
            .ok_or_else(|| Trap::host(format!("push_state_offset before get_state: {key}")))?;
        entry
            .push_range(off as usize, len as usize)
            .map_err(Trap::host)?;
        Ok(vec![])
    });
    l.define_fn("faasm", "pull_state", |ctx, args| {
        let (kp, kl, size) = (arg_i32(args, 0)?, arg_i32(args, 1)?, arg_i32(args, 2)?);
        let (mem, fctx) = parts(ctx)?;
        let key = read_str(mem, kp, kl)?;
        let entry = fctx.state_entry(&key, size as usize).map_err(Trap::host)?;
        entry.invalidate();
        entry.pull().map_err(Trap::host)?;
        Ok(vec![])
    });
    l.define_fn("faasm", "pull_state_offset", |ctx, args| {
        let (kp, kl, size, off, len) = (
            arg_i32(args, 0)?,
            arg_i32(args, 1)?,
            arg_i32(args, 2)?,
            arg_i32(args, 3)?,
            arg_i32(args, 4)?,
        );
        let (mem, fctx) = parts(ctx)?;
        let key = read_str(mem, kp, kl)?;
        let entry = fctx.state_entry(&key, size as usize).map_err(Trap::host)?;
        entry
            .pull_range(off as usize, len as usize)
            .map_err(Trap::host)?;
        Ok(vec![])
    });
    l.define_fn("faasm", "append_state", |ctx, args| {
        let (kp, kl, vp, vl) = (
            arg_i32(args, 0)?,
            arg_i32(args, 1)?,
            arg_i32(args, 2)?,
            arg_i32(args, 3)?,
        );
        let (mem, fctx) = parts(ctx)?;
        let key = read_str(mem, kp, kl)?;
        let value = read_bytes(mem, vp, vl)?;
        fctx.state.kv().append(&key, value).map_err(Trap::host)?;
        Ok(vec![])
    });

    // Local and global state locks. Each takes (key_ptr, key_len).
    macro_rules! state_lock_fn {
        ($name:literal, $method:ident, global) => {
            l.define_fn("faasm", $name, |ctx, args| {
                let (kp, kl) = (arg_i32(args, 0)?, arg_i32(args, 1)?);
                let (mem, fctx) = parts(ctx)?;
                let key = read_str(mem, kp, kl)?;
                let entry = fctx.state_entry(&key, 1).map_err(Trap::host)?;
                entry.$method().map_err(Trap::host)?;
                Ok(vec![])
            });
        };
        ($name:literal, $method:ident, local) => {
            l.define_fn("faasm", $name, |ctx, args| {
                let (kp, kl) = (arg_i32(args, 0)?, arg_i32(args, 1)?);
                let (mem, fctx) = parts(ctx)?;
                let key = read_str(mem, kp, kl)?;
                let entry = fctx.state_entry(&key, 1).map_err(Trap::host)?;
                entry.$method();
                Ok(vec![])
            });
        };
    }
    state_lock_fn!("lock_state_read", lock_read, local);
    state_lock_fn!("unlock_state_read", unlock_read, local);
    state_lock_fn!("lock_state_write", lock_write, local);
    state_lock_fn!("unlock_state_write", unlock_write, local);
    state_lock_fn!("lock_state_global_read", lock_global_read, global);
    state_lock_fn!("unlock_state_global_read", unlock_global_read, global);
    state_lock_fn!("lock_state_global_write", lock_global_write, global);
    state_lock_fn!("unlock_state_global_write", unlock_global_write, global);

    // ── Dynamic linking ────────────────────────────────────────────────
    l.define_fn("faasm", "dlopen", |ctx, args| {
        let (pp, pl) = (arg_i32(args, 0)?, arg_i32(args, 1)?);
        let (mem, fctx) = parts(ctx)?;
        let path = read_str(mem, pp, pl)?;
        // Load through the Faaslet filesystem (capability checks included).
        let Ok(fd) = fctx.fdtable.open(&path, OpenFlags::read_only()) else {
            return ok_i32(-1);
        };
        let Ok(stat) = fctx.fdtable.fstat(fd) else {
            return ok_i32(-1);
        };
        let bytes = fctx
            .fdtable
            .read(fd, stat.size as usize)
            .unwrap_or_default();
        let _ = fctx.fdtable.close(fd);
        // "All dynamically loaded code must first be compiled to
        // WebAssembly and undergo the same validation process" (§3.2).
        // Plugins stay on the reference interpreter: dlopen is a cold,
        // one-off path where lowering latency would not amortise.
        let Ok(object) = ObjectModule::compile(&bytes) else {
            return ok_i32(-1);
        };
        // Plugins are self-contained: they may not import host functions.
        let Ok(instance) = Instance::new(object, &Linker::new(), Box::new(())) else {
            return ok_i32(-1);
        };
        fctx.dl_modules.push(Some(instance));
        ok_i32(fctx.dl_modules.len() as i32 - 1)
    });
    l.define_fn("faasm", "dlsym", |ctx, args| {
        let (handle, np, nl) = (arg_i32(args, 0)?, arg_i32(args, 1)?, arg_i32(args, 2)?);
        let (mem, fctx) = parts(ctx)?;
        let name = read_str(mem, np, nl)?;
        let Some(Some(inst)) = fctx.dl_modules.get(handle as usize) else {
            return ok_i32(-1);
        };
        let Some(func_idx) = inst
            .object()
            .module
            .find_export(&name, faasm_fvm::ExportKind::Func)
        else {
            return ok_i32(-1);
        };
        // Symbol reference encodes (handle, function index).
        ok_i32(((handle as u32) << 16 | (func_idx & 0xffff)) as i32)
    });
    l.define_fn("faasm", "dlcall", |ctx, args| {
        let (symref, ap, al, op, oc) = (
            arg_i32(args, 0)?,
            arg_i32(args, 1)?,
            arg_i32(args, 2)?,
            arg_i32(args, 3)?,
            arg_i32(args, 4)?,
        );
        let (mem, fctx) = parts(ctx)?;
        let arg_data = read_bytes(mem, ap, al)?;
        let handle = (symref as u32 >> 16) as usize;
        let func_idx = symref as u32 & 0xffff;
        let Some(Some(inst)) = fctx.dl_modules.get_mut(handle) else {
            return ok_i32(-1);
        };
        // Copy-in at the DL_BUF convention address.
        let Some(sub_mem) = inst.memory_mut() else {
            return ok_i32(-1);
        };
        if sub_mem.write(DL_BUF as usize, &arg_data).is_err() {
            return ok_i32(-1);
        }
        let ret = inst.call_func(
            func_idx,
            &[Val::I32(DL_BUF as i32), Val::I32(arg_data.len() as i32)],
        );
        let Ok(Some(Val::I32(ret_len))) = ret else {
            return ok_i32(-1);
        };
        if ret_len < 0 {
            return ok_i32(-1);
        }
        let n = (ret_len as usize).min(oc as usize);
        let mut out = vec![0u8; n];
        if inst
            .memory()
            .expect("checked above")
            .read(DL_BUF as usize, &mut out)
            .is_err()
        {
            return ok_i32(-1);
        }
        write_bytes(mem, op, &out)?;
        ok_i32(n as i32)
    });
    l.define_fn("faasm", "dlclose", |ctx, args| {
        let handle = arg_i32(args, 0)?;
        let (_mem, fctx) = parts(ctx)?;
        match fctx.dl_modules.get_mut(handle as usize) {
            Some(slot @ Some(_)) => {
                *slot = None;
                ok_i32(0)
            }
            _ => ok_i32(-1),
        }
    });

    // ── Memory ─────────────────────────────────────────────────────────
    l.define_fn("faasm", "mmap", |ctx, args| {
        let len = arg_i32(args, 0)?;
        let (mem, _fctx) = parts(ctx)?;
        let pages = faasm_mem::pages_for_bytes(len as u32 as usize).max(1);
        match mem.grow(pages) {
            Ok(old_pages) => ok_i32((old_pages * faasm_mem::PAGE_SIZE) as i32),
            // "These calls fail if growth of the private region would exceed
            // this limit" (§3.2) — fail, not trap.
            Err(_) => ok_i32(-1),
        }
    });
    l.define_fn("faasm", "munmap", |_ctx, _args| {
        // Pages are reclaimed when the Faaslet is reset from its
        // Proto-Faaslet; munmap succeeds as a no-op (documented divergence).
        ok_i32(0)
    });
    l.define_fn("faasm", "brk", |ctx, args| {
        let target = arg_i32(args, 0)? as u32 as usize;
        let (mem, _fctx) = parts(ctx)?;
        if target <= mem.size_bytes() {
            return ok_i32(0);
        }
        let delta = faasm_mem::pages_for_bytes(target - mem.size_bytes());
        match mem.grow(delta) {
            Ok(_) => ok_i32(0),
            Err(_) => ok_i32(-1),
        }
    });
    l.define_fn("faasm", "sbrk", |ctx, args| {
        let delta = arg_i32(args, 0)?;
        let (mem, _fctx) = parts(ctx)?;
        let old = mem.size_bytes();
        if delta > 0 {
            let pages = faasm_mem::pages_for_bytes(delta as usize);
            if mem.grow(pages).is_err() {
                return ok_i32(-1);
            }
        }
        // Negative sbrk is accepted but does not shrink (reset reclaims).
        ok_i32(old as i32)
    });

    // ── Networking ─────────────────────────────────────────────────────
    l.define_fn("faasm", "socket", |ctx, _args| {
        let (_mem, fctx) = parts(ctx)?;
        ok_i32(fctx.socket() as i32)
    });
    l.define_fn("faasm", "connect", |ctx, args| {
        let (sock, host) = (arg_i32(args, 0)?, arg_i32(args, 1)?);
        let (_mem, fctx) = parts(ctx)?;
        let ok = fctx.connect(sock as u32, HostId(host as u32));
        ok_i32(if ok { 0 } else { -1 })
    });
    l.define_fn("faasm", "send", |ctx, args| {
        let (sock, ptr, len) = (arg_i32(args, 0)?, arg_i32(args, 1)?, arg_i32(args, 2)?);
        let (mem, fctx) = parts(ctx)?;
        let data = read_bytes(mem, ptr, len)?;
        match fctx.sock_send(sock as u32, &data) {
            Ok(n) => ok_i32(n as i32),
            Err(_) => ok_i32(-1),
        }
    });
    l.define_fn("faasm", "recv", |ctx, args| {
        let (sock, ptr, len) = (arg_i32(args, 0)?, arg_i32(args, 1)?, arg_i32(args, 2)?);
        let (mem, fctx) = parts(ctx)?;
        let mut buf = vec![0u8; len as u32 as usize];
        let n = fctx.sock_recv(sock as u32, &mut buf);
        write_bytes(mem, ptr, &buf[..n])?;
        ok_i32(n as i32)
    });
    l.define_fn("faasm", "sock_close", |ctx, args| {
        let sock = arg_i32(args, 0)?;
        let (_mem, fctx) = parts(ctx)?;
        ok_i32(if fctx.sock_close(sock as u32) { 0 } else { -1 })
    });

    // ── File I/O ───────────────────────────────────────────────────────
    l.define_fn("faasm", "open", |ctx, args| {
        let (pp, pl, flags) = (arg_i32(args, 0)?, arg_i32(args, 1)?, arg_i32(args, 2)?);
        let (mem, fctx) = parts(ctx)?;
        let path = read_str(mem, pp, pl)?;
        let flags = OpenFlags {
            read: flags & 0x1 != 0,
            write: flags & 0x2 != 0,
            create: flags & 0x4 != 0,
            truncate: flags & 0x8 != 0,
            append: flags & 0x10 != 0,
        };
        match fctx.fdtable.open(&path, flags) {
            Ok(fd) => ok_i32(fd as i32),
            Err(_) => ok_i32(-1),
        }
    });
    l.define_fn("faasm", "close", |ctx, args| {
        let fd = arg_i32(args, 0)?;
        let (_mem, fctx) = parts(ctx)?;
        match fctx.fdtable.close(fd as u32) {
            Ok(()) => ok_i32(0),
            Err(_) => ok_i32(-1),
        }
    });
    l.define_fn("faasm", "dup", |ctx, args| {
        let fd = arg_i32(args, 0)?;
        let (_mem, fctx) = parts(ctx)?;
        match fctx.fdtable.dup(fd as u32) {
            Ok(fd2) => ok_i32(fd2 as i32),
            Err(_) => ok_i32(-1),
        }
    });
    l.define_fn("faasm", "read", |ctx, args| {
        let (fd, ptr, len) = (arg_i32(args, 0)?, arg_i32(args, 1)?, arg_i32(args, 2)?);
        let (mem, fctx) = parts(ctx)?;
        match fctx.fdtable.read(fd as u32, len as u32 as usize) {
            Ok(data) => {
                write_bytes(mem, ptr, &data)?;
                ok_i32(data.len() as i32)
            }
            Err(_) => ok_i32(-1),
        }
    });
    l.define_fn("faasm", "write", |ctx, args| {
        let (fd, ptr, len) = (arg_i32(args, 0)?, arg_i32(args, 1)?, arg_i32(args, 2)?);
        let (mem, fctx) = parts(ctx)?;
        let data = read_bytes(mem, ptr, len)?;
        match fctx.fdtable.write(fd as u32, &data) {
            Ok(n) => ok_i32(n as i32),
            Err(_) => ok_i32(-1),
        }
    });
    l.define_fn("faasm", "seek", |ctx, args| {
        let (fd, off, whence) = (arg_i32(args, 0)?, arg_i64(args, 1)?, arg_i32(args, 2)?);
        let (_mem, fctx) = parts(ctx)?;
        let whence = match whence {
            0 => Whence::Set,
            1 => Whence::Cur,
            2 => Whence::End,
            _ => return ok_i64(-1),
        };
        match fctx.fdtable.seek(fd as u32, off, whence) {
            Ok(pos) => ok_i64(pos as i64),
            Err(_) => ok_i64(-1),
        }
    });
    l.define_fn("faasm", "stat_size", |ctx, args| {
        let (pp, pl) = (arg_i32(args, 0)?, arg_i32(args, 1)?);
        let (mem, fctx) = parts(ctx)?;
        let path = read_str(mem, pp, pl)?;
        match fctx.fdtable.stat(&path) {
            Ok(st) => ok_i64(st.size as i64),
            Err(_) => ok_i64(-1),
        }
    });

    // ── Misc ───────────────────────────────────────────────────────────
    l.define_fn("faasm", "gettime", |ctx, _args| {
        let (_mem, fctx) = parts(ctx)?;
        ok_i64(fctx.gettime_ns() as i64)
    });
    l.define_fn("faasm", "getrandom", |ctx, args| {
        let (ptr, len) = (arg_i32(args, 0)?, arg_i32(args, 1)?);
        let (mem, fctx) = parts(ctx)?;
        let mut buf = vec![0u8; len as u32 as usize];
        fctx.rng.fill(&mut buf);
        write_bytes(mem, ptr, &buf)?;
        ok_i32(len)
    });

    l
}

#[cfg(test)]
mod tests;
