//! Snapshot distribution: content-addressed Proto-Faaslet chunks.
//!
//! A restore is only microseconds if the snapshot bytes are already
//! on-host (§5.2). This module turns a [`ProtoFaaslet`] into immutable,
//! hash-keyed chunks shipped through the sharded state tier: one **meta
//! chunk** (user, function, globals, indirect-call table, memory header)
//! plus one chunk per 64 KiB memory page, all addressed by SHA-256 digest.
//! A **manifest** — the only mutable key — names the meta digest and the
//! ordered page digests. Content addressing buys two properties at once:
//!
//! * **Dedup across versions.** Memory pages identical between proto
//!   versions (or between different functions) hash to the same chunk and
//!   are stored/shipped once; republishing after a small change ships only
//!   the changed pages.
//! * **Verified fetches.** A fetcher recomputes every chunk's digest
//!   against the key it asked for, so a corrupt or substituted chunk is
//!   rejected at the cache boundary and never reaches a restore.
//!
//! [`SnapshotCache`] is the host-local side: a bytes-bounded LRU of
//! verified chunks shared by every fetch/pre-stage on the instance.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::{Buf, BufMut};
use faasm_fvm::InstanceSnapshot;
use faasm_kvs::Digest;
use faasm_mem::{MemorySnapshot, Page, PAGE_SIZE};
use parking_lot::Mutex;

use crate::proto::{ProtoEncodeError, ProtoFaaslet};

/// The chunk manifest for one function's proto: everything a host needs to
/// know *what* to fetch before it fetches anything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoManifest {
    /// Digest of the meta chunk (globals, table, memory header).
    pub meta: Digest,
    /// Per-page chunk digests in address order (empty for memory-less
    /// protos).
    pub pages: Vec<Digest>,
}

impl ProtoManifest {
    /// Serialise: `meta:32 | count:u32 | page digests:32 each`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(36 + self.pages.len() * 32);
        out.put_slice(&self.meta.0);
        out.put_u32_le(self.pages.len() as u32);
        for d in &self.pages {
            out.put_slice(&d.0);
        }
        out
    }

    /// Deserialise; `None` on malformed input (truncation, hostile count,
    /// trailing bytes).
    pub fn from_bytes(mut buf: &[u8]) -> Option<ProtoManifest> {
        if buf.remaining() < 36 {
            return None;
        }
        let mut meta = [0u8; 32];
        buf.copy_to_slice(&mut meta);
        let n = buf.get_u32_le() as usize;
        // Every digest costs exactly 32 bytes — a hostile count cannot
        // out-size the buffer it rode in on.
        if buf.remaining() != n.saturating_mul(32) {
            return None;
        }
        let mut pages = Vec::with_capacity(n);
        for _ in 0..n {
            let mut d = [0u8; 32];
            buf.copy_to_slice(&mut d);
            pages.push(Digest(d));
        }
        Some(ProtoManifest {
            meta: Digest(meta),
            pages,
        })
    }

    /// Every chunk digest the manifest references (meta first, then pages
    /// in address order) — the fetch list.
    pub fn all_digests(&self) -> Vec<Digest> {
        let mut out = Vec::with_capacity(1 + self.pages.len());
        out.push(self.meta);
        out.extend_from_slice(&self.pages);
        out
    }
}

/// A proto exploded into content-addressed chunks, ready to publish.
#[derive(Debug)]
pub struct ChunkedProto {
    /// The manifest naming every chunk.
    pub manifest: ProtoManifest,
    /// Unique chunk payloads by digest — pages identical within the proto
    /// already collapse here, so `chunks.len()` can be smaller than
    /// `1 + manifest.pages.len()`.
    pub chunks: HashMap<Digest, Arc<Vec<u8>>>,
}

impl ChunkedProto {
    /// Total unique payload bytes (what a publish ships at worst).
    pub fn unique_bytes(&self) -> usize {
        self.chunks.values().map(|c| c.len()).sum()
    }
}

/// Explode a proto into its meta chunk + per-page chunks.
///
/// # Errors
///
/// [`ProtoEncodeError`] if a meta section overflows its length prefix.
pub fn chunk_proto(proto: &ProtoFaaslet) -> Result<ChunkedProto, ProtoEncodeError> {
    let meta_bytes = encode_meta(proto)?;
    let meta = Digest::of(&meta_bytes);
    let mut chunks = HashMap::new();
    chunks.insert(meta, Arc::new(meta_bytes));
    let mut pages = Vec::new();
    if let Some(mem) = &proto.snapshot.mem {
        for page in mem.pages() {
            let bytes = page.to_bytes().into_vec();
            let d = Digest::of(&bytes);
            pages.push(d);
            chunks.entry(d).or_insert_with(|| Arc::new(bytes));
        }
    }
    Ok(ChunkedProto {
        manifest: ProtoManifest { meta, pages },
        chunks,
    })
}

/// Reassemble a proto from its verified chunks: the meta chunk plus one
/// `PAGE_SIZE` payload per manifest page, in address order. Returns `None`
/// on any structural mismatch (malformed meta, wrong page count or size) —
/// the caller falls back to a cold start.
pub fn assemble_proto(meta_bytes: &[u8], page_chunks: &[Arc<Vec<u8>>]) -> Option<ProtoFaaslet> {
    let meta = decode_meta(meta_bytes)?;
    let mem = match meta.mem {
        Some((size_pages, max_pages)) => {
            if page_chunks.len() != size_pages {
                return None;
            }
            let mut pages = Vec::with_capacity(size_pages);
            for chunk in page_chunks {
                if chunk.len() != PAGE_SIZE {
                    return None;
                }
                pages.push(Arc::new(Page::from_bytes(chunk)));
            }
            Some(MemorySnapshot::from_pages(pages, max_pages)?)
        }
        None => {
            if !page_chunks.is_empty() {
                return None;
            }
            None
        }
    };
    Some(ProtoFaaslet {
        user: meta.user,
        function: meta.function,
        snapshot: InstanceSnapshot {
            mem,
            globals: meta.globals,
            table: meta.table,
        },
    })
}

/// The decoded meta chunk: a proto minus its page payloads.
struct ProtoMeta {
    user: String,
    function: String,
    /// `(size_pages, max_pages)` when the proto captured a memory.
    mem: Option<(usize, usize)>,
    globals: Vec<u64>,
    table: Vec<Option<u32>>,
}

/// Encode the meta chunk: `user | function | mem tag (+ size/max pages) |
/// globals | table`, same section conventions as
/// [`ProtoFaaslet::to_bytes`].
fn encode_meta(proto: &ProtoFaaslet) -> Result<Vec<u8>, ProtoEncodeError> {
    let checked = |len: usize, section: &'static str| {
        u32::try_from(len).map_err(|_| ProtoEncodeError { section, len })
    };
    let mut out = Vec::new();
    out.put_u32_le(checked(proto.user.len(), "user")?);
    out.put_slice(proto.user.as_bytes());
    out.put_u32_le(checked(proto.function.len(), "function")?);
    out.put_slice(proto.function.as_bytes());
    match &proto.snapshot.mem {
        Some(mem) => {
            out.put_u8(1);
            out.put_u32_le(checked(mem.size_pages(), "size_pages")?);
            out.put_u32_le(checked(mem.max_pages(), "max_pages")?);
        }
        None => out.put_u8(0),
    }
    out.put_u32_le(checked(proto.snapshot.globals.len(), "globals")?);
    for g in &proto.snapshot.globals {
        out.put_u64_le(*g);
    }
    out.put_u32_le(checked(proto.snapshot.table.len(), "table")?);
    for t in &proto.snapshot.table {
        match t {
            Some(f) => {
                out.put_u8(1);
                out.put_u32_le(*f);
            }
            None => out.put_u8(0),
        }
    }
    Ok(out)
}

fn decode_meta(mut buf: &[u8]) -> Option<ProtoMeta> {
    fn get_string(buf: &mut &[u8]) -> Option<String> {
        if buf.remaining() < 4 {
            return None;
        }
        let len = buf.get_u32_le() as usize;
        if buf.remaining() < len {
            return None;
        }
        let mut v = vec![0u8; len];
        buf.copy_to_slice(&mut v);
        String::from_utf8(v).ok()
    }
    let user = get_string(&mut buf)?;
    let function = get_string(&mut buf)?;
    if buf.remaining() < 1 {
        return None;
    }
    let mem = match buf.get_u8() {
        0 => None,
        1 => {
            if buf.remaining() < 8 {
                return None;
            }
            let size_pages = buf.get_u32_le() as usize;
            let max_pages = buf.get_u32_le() as usize;
            if max_pages < size_pages {
                return None;
            }
            Some((size_pages, max_pages))
        }
        _ => return None,
    };
    if buf.remaining() < 4 {
        return None;
    }
    let ng = buf.get_u32_le() as usize;
    if buf.remaining() < ng.saturating_mul(8) {
        return None;
    }
    let globals = (0..ng).map(|_| buf.get_u64_le()).collect();
    if buf.remaining() < 4 {
        return None;
    }
    let nt = buf.get_u32_le() as usize;
    // Each entry costs ≥ 1 byte, so the count cannot drive a huge
    // preallocation.
    if nt > buf.remaining() {
        return None;
    }
    let mut table = Vec::with_capacity(nt);
    for _ in 0..nt {
        if buf.remaining() < 1 {
            return None;
        }
        table.push(match buf.get_u8() {
            0 => None,
            1 => {
                if buf.remaining() < 4 {
                    return None;
                }
                Some(buf.get_u32_le())
            }
            _ => return None,
        });
    }
    if buf.has_remaining() {
        return None;
    }
    Some(ProtoMeta {
        user,
        function,
        mem,
        globals,
        table,
    })
}

/// Counters the snapshot plane keeps per instance (all relaxed atomics —
/// read by `figures coldstart` and the storm bench).
#[derive(Debug, Default)]
pub struct SnapStats {
    /// Manifest-driven fetch attempts (peer-fetch resolve steps).
    pub fetches: AtomicU64,
    /// Chunks pulled over the wire.
    pub chunks_fetched: AtomicU64,
    /// Chunks served from the local cache during a fetch.
    pub chunk_hits: AtomicU64,
    /// Fetched chunks whose digest did not match their key.
    pub verify_failures: AtomicU64,
    /// Chunks this instance published (absent from the tier).
    pub chunks_published: AtomicU64,
    /// Bytes this instance published.
    pub bytes_published: AtomicU64,
    /// Chunks skipped at publish because the tier already held them — the
    /// cross-version dedup counter.
    pub chunks_deduped: AtomicU64,
    /// Bytes dedup saved at publish.
    pub bytes_deduped: AtomicU64,
    /// Pre-stage pushes handled (manifests landed over the bus).
    pub prestages: AtomicU64,
    /// Chunks evicted by the cache's byte budget.
    pub evictions: AtomicU64,
}

/// A coherent copy of [`SnapStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapStatsSnapshot {
    /// See [`SnapStats::fetches`].
    pub fetches: u64,
    /// See [`SnapStats::chunks_fetched`].
    pub chunks_fetched: u64,
    /// See [`SnapStats::chunk_hits`].
    pub chunk_hits: u64,
    /// See [`SnapStats::verify_failures`].
    pub verify_failures: u64,
    /// See [`SnapStats::chunks_published`].
    pub chunks_published: u64,
    /// See [`SnapStats::bytes_published`].
    pub bytes_published: u64,
    /// See [`SnapStats::chunks_deduped`].
    pub chunks_deduped: u64,
    /// See [`SnapStats::bytes_deduped`].
    pub bytes_deduped: u64,
    /// See [`SnapStats::prestages`].
    pub prestages: u64,
    /// See [`SnapStats::evictions`].
    pub evictions: u64,
}

impl SnapStats {
    /// Snapshot every counter.
    pub fn snapshot(&self) -> SnapStatsSnapshot {
        SnapStatsSnapshot {
            fetches: self.fetches.load(Ordering::Relaxed),
            chunks_fetched: self.chunks_fetched.load(Ordering::Relaxed),
            chunk_hits: self.chunk_hits.load(Ordering::Relaxed),
            verify_failures: self.verify_failures.load(Ordering::Relaxed),
            chunks_published: self.chunks_published.load(Ordering::Relaxed),
            bytes_published: self.bytes_published.load(Ordering::Relaxed),
            chunks_deduped: self.chunks_deduped.load(Ordering::Relaxed),
            bytes_deduped: self.bytes_deduped.load(Ordering::Relaxed),
            prestages: self.prestages.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// Default byte budget for a host's snapshot cache (enough for tens of
/// typical protos; a full cache evicts least-recently-used chunks).
pub const DEFAULT_SNAPSHOT_CACHE_BYTES: usize = 64 * 1024 * 1024;

struct CacheEntry {
    bytes: Arc<Vec<u8>>,
    last_used: u64,
}

struct CacheInner {
    chunks: HashMap<Digest, CacheEntry>,
    bytes: usize,
    clock: u64,
}

/// The host-local snapshot cache: verified chunk payloads keyed by digest,
/// bounded by a byte budget with least-recently-used eviction. Only
/// *verified* bytes are ever inserted (the fetch path checks the digest
/// first), so a cache hit needs no re-verification.
pub struct SnapshotCache {
    inner: Mutex<CacheInner>,
    budget: usize,
    stats: SnapStats,
}

impl SnapshotCache {
    /// A cache bounded at `budget` bytes of chunk payload.
    pub fn new(budget: usize) -> SnapshotCache {
        SnapshotCache {
            inner: Mutex::new(CacheInner {
                chunks: HashMap::new(),
                bytes: 0,
                clock: 0,
            }),
            budget,
            stats: SnapStats::default(),
        }
    }

    /// The chunk's payload if cached (refreshes its LRU stamp). Does not
    /// count toward fetch-path hit stats — callers attribute hits to the
    /// operation they serve.
    pub fn get(&self, d: &Digest) -> Option<Arc<Vec<u8>>> {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        let entry = inner.chunks.get_mut(d)?;
        entry.last_used = clock;
        Some(Arc::clone(&entry.bytes))
    }

    /// Insert a verified chunk, evicting least-recently-used entries while
    /// over budget. A chunk larger than the whole budget is not cached.
    pub fn insert(&self, d: Digest, bytes: Arc<Vec<u8>>) {
        if bytes.len() > self.budget {
            return;
        }
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        let len = bytes.len();
        if let Some(prev) = inner.chunks.insert(
            d,
            CacheEntry {
                bytes,
                last_used: clock,
            },
        ) {
            inner.bytes -= prev.bytes.len();
        }
        inner.bytes += len;
        while inner.bytes > self.budget {
            // Eviction is rare (budget overflow only) — a linear scan for
            // the oldest stamp beats maintaining an order structure on
            // every hit.
            let Some((&victim, _)) = inner
                .chunks
                .iter()
                .filter(|(k, _)| **k != d)
                .min_by_key(|(_, e)| e.last_used)
            else {
                break;
            };
            let evicted = inner.chunks.remove(&victim).expect("victim present");
            inner.bytes -= evicted.bytes.len();
            self.stats.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Current payload bytes held.
    pub fn bytes(&self) -> usize {
        self.inner.lock().bytes
    }

    /// The plane's per-instance counters.
    pub fn stats(&self) -> &SnapStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasm_fvm::prelude::*;

    fn proto_with_mem(seed: u8) -> ProtoFaaslet {
        let mut b = ModuleBuilder::new();
        b.memory(3, 6);
        b.global(ValType::I64, true, Val::I64(7));
        b.table(2);
        let sig = b.sig(FuncType::default());
        let f = b.func(sig, vec![], vec![Instr::End]);
        b.elem(0, vec![f]);
        b.export_func("main", f);
        let object = ObjectModule::prepare(b.build()).unwrap();
        let mut inst = Instance::new(object, &Linker::new(), Box::new(())).unwrap();
        // Dirty only page 1: pages 0 and 2 stay zero and must dedup to a
        // single zero chunk.
        inst.memory_mut()
            .unwrap()
            .write(PAGE_SIZE + 10, &[seed; 64])
            .unwrap();
        ProtoFaaslet {
            user: "u".into(),
            function: format!("f{seed}"),
            snapshot: inst.snapshot(),
        }
    }

    #[test]
    fn manifest_roundtrip_and_hostile_counts() {
        let proto = proto_with_mem(1);
        let chunked = chunk_proto(&proto).unwrap();
        let bytes = chunked.manifest.to_bytes();
        assert_eq!(ProtoManifest::from_bytes(&bytes).unwrap(), chunked.manifest);
        // Truncations and trailing bytes rejected.
        for cut in [0usize, 35, bytes.len() - 1] {
            assert!(ProtoManifest::from_bytes(&bytes[..cut]).is_none(), "{cut}");
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(ProtoManifest::from_bytes(&trailing).is_none());
        // A hostile page count cannot out-size its payload.
        let mut hostile = bytes.clone();
        hostile[32..36].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(ProtoManifest::from_bytes(&hostile).is_none());
    }

    #[test]
    fn identical_pages_dedup_within_and_across_protos() {
        let a = chunk_proto(&proto_with_mem(1)).unwrap();
        // 3 pages, two of them zero → 1 meta + 2 unique page chunks.
        assert_eq!(a.manifest.pages.len(), 3);
        assert_eq!(a.chunks.len(), 3);
        assert_eq!(a.manifest.pages[0], a.manifest.pages[2]);
        // A second version differing only in its dirty page shares the
        // zero-page chunk digest — the cross-version dedup property.
        let b = chunk_proto(&proto_with_mem(2)).unwrap();
        assert_eq!(a.manifest.pages[0], b.manifest.pages[0]);
        assert_ne!(a.manifest.pages[1], b.manifest.pages[1]);
    }

    #[test]
    fn chunked_proto_reassembles_bitwise() {
        let proto = proto_with_mem(3);
        let chunked = chunk_proto(&proto).unwrap();
        let meta = chunked.chunks.get(&chunked.manifest.meta).unwrap();
        let pages: Vec<Arc<Vec<u8>>> = chunked
            .manifest
            .pages
            .iter()
            .map(|d| Arc::clone(chunked.chunks.get(d).unwrap()))
            .collect();
        let back = assemble_proto(meta, &pages).unwrap();
        assert_eq!(back.user, proto.user);
        assert_eq!(back.function, proto.function);
        assert_eq!(back.snapshot.globals, proto.snapshot.globals);
        assert_eq!(back.snapshot.table, proto.snapshot.table);
        assert_eq!(
            back.snapshot.mem.as_ref().unwrap().to_bytes(),
            proto.snapshot.mem.as_ref().unwrap().to_bytes()
        );
        // Structural mismatches are rejected, not mis-assembled.
        assert!(assemble_proto(meta, &pages[..2]).is_none());
        assert!(assemble_proto(b"garbage", &pages).is_none());
        let short: Vec<_> = (0..3).map(|_| Arc::new(vec![0u8; 16])).collect();
        assert!(assemble_proto(meta, &short).is_none());
    }

    #[test]
    fn cache_bounds_bytes_and_evicts_lru() {
        let cache = SnapshotCache::new(3 * PAGE_SIZE);
        let chunks: Vec<(Digest, Arc<Vec<u8>>)> = (0..4u8)
            .map(|i| {
                let bytes = Arc::new(vec![i; PAGE_SIZE]);
                (Digest::of(&bytes), bytes)
            })
            .collect();
        for (d, b) in &chunks[..3] {
            cache.insert(*d, Arc::clone(b));
        }
        assert_eq!(cache.bytes(), 3 * PAGE_SIZE);
        // Touch chunk 0 so chunk 1 becomes the LRU victim.
        assert!(cache.get(&chunks[0].0).is_some());
        cache.insert(chunks[3].0, Arc::clone(&chunks[3].1));
        assert_eq!(cache.bytes(), 3 * PAGE_SIZE);
        assert!(cache.get(&chunks[1].0).is_none());
        assert!(cache.get(&chunks[0].0).is_some());
        assert!(cache.get(&chunks[3].0).is_some());
        assert_eq!(cache.stats().snapshot().evictions, 1);
        // An over-budget chunk is refused outright.
        let huge = Arc::new(vec![9u8; 4 * PAGE_SIZE]);
        cache.insert(Digest::of(&huge), huge);
        assert_eq!(cache.bytes(), 3 * PAGE_SIZE);
    }
}
