//! Completion slots shared by every submit/await pair in the system.
//!
//! The runtime instance's `Pending`, the cluster front door and the
//! gateway's completion table are all the same data structure — a slot map
//! keyed by call/ticket id plus a condvar — differing only in two policies:
//!
//! * **store-unregistered**: whether a result arriving for an id nobody
//!   registered is parked for a later taker (the message-bus semantics:
//!   results may beat the waiter to the map) or dropped (the gateway
//!   semantics: a slot abandoned by a timed-out waiter must not leak its
//!   response).
//! * **TTL sweep**: whether fulfilled slots nobody ever claims
//!   (fire-and-forget submits) are eventually swept.
//!
//! [`PendingMap`] captures both behind knobs; [`Pending`] is the
//! store-unregistered instantiation over [`CallResult`] used by the runtime,
//! the cluster ingress and the container baseline.
//!
//! **Register-before-fulfill invariant.** Waiter-style callers must
//! [`PendingMap::register`] an id *before* the work that fulfils it is
//! dispatched; otherwise a non-storing map drops the result and the waiter
//! blocks out its timeout. The in-tree callers hold this: the cluster front
//! door registers before `Nic::send`, the instance registers in
//! `chain_call`/`submit_placed` before queueing, the baseline platform
//! registers before its gateway send, and the gateway registers a ticket
//! before admission. Callback waiters ([`PendingMap::register_callback`])
//! are exempt — a callback registered after an early fulfilment is invoked
//! immediately when the map stores unregistered results.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use faasm_sched::CallResult;
use parking_lot::{Condvar, Mutex};

/// A completion hook invoked exactly once with the terminal value, from
/// whichever thread fulfilled it.
pub type PendingCallback<T> = Box<dyn FnOnce(T) + Send>;

/// One id's completion state.
enum Slot<T> {
    /// Registered; a blocking waiter will claim it.
    Waiting,
    /// Fulfilled, awaiting its taker; swept after the TTL (if any).
    Ready(T, Instant),
    /// A callback waiter: fulfilment invokes the hook instead of parking
    /// the value, so no thread blocks per in-flight id.
    Callback(PendingCallback<T>),
}

impl<T> std::fmt::Debug for Slot<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Slot::Waiting => f.write_str("Waiting"),
            Slot::Ready(..) => f.write_str("Ready"),
            Slot::Callback(_) => f.write_str("Callback"),
        }
    }
}

/// The slot map plus the bookkeeping that keeps the TTL sweep off the hot
/// path: `fulfilled` counts delivered-but-unclaimed slots (live waiters do
/// not trigger sweeps) and `last_sweep` rate-limits full-map scans.
#[derive(Debug)]
struct Slots<T> {
    map: HashMap<u64, Slot<T>>,
    fulfilled: usize,
    last_sweep: Instant,
}

/// Unclaimed fulfilled-slot count above which `fulfill` runs the TTL sweep.
const SWEEP_THRESHOLD: usize = 256;

/// Generic completion slots: id → eventual value, with blocking and
/// callback waiters. See the module docs for the two policy knobs.
#[derive(Debug)]
pub struct PendingMap<T> {
    slots: Mutex<Slots<T>>,
    cv: Condvar,
    store_unregistered: bool,
    ttl: Option<Duration>,
}

impl<T: Send> Default for PendingMap<T> {
    fn default() -> PendingMap<T> {
        PendingMap::new(true, None)
    }
}

impl<T: Send> PendingMap<T> {
    /// A map with explicit policies: `store_unregistered` parks values
    /// fulfilled for ids nobody registered (message-bus semantics; such a
    /// map also keeps timed-out waiters' slots so a late value is not
    /// lost), `ttl` sweeps fulfilled-but-unclaimed slots after the given
    /// age (fire-and-forget hygiene).
    pub fn new(store_unregistered: bool, ttl: Option<Duration>) -> PendingMap<T> {
        PendingMap {
            slots: Mutex::new(Slots {
                map: HashMap::new(),
                fulfilled: 0,
                last_sweep: Instant::now(),
            }),
            cv: Condvar::new(),
            store_unregistered,
            ttl,
        }
    }

    /// Reserve a slot for an id about to be dispatched.
    pub fn register(&self, id: u64) {
        self.slots.lock().map.entry(id).or_insert(Slot::Waiting);
    }

    /// Register a callback waiter: fulfilment invokes `cb` exactly once
    /// with the value, outside the map lock. If a value is already parked
    /// for `id` (store-unregistered maps), the callback runs immediately.
    pub fn register_callback(&self, id: u64, cb: PendingCallback<T>) {
        let ready = {
            let mut slots = self.slots.lock();
            if matches!(slots.map.get(&id), Some(Slot::Ready(..))) {
                slots.fulfilled = slots.fulfilled.saturating_sub(1);
                match slots.map.remove(&id) {
                    Some(Slot::Ready(v, _)) => Some(v),
                    _ => unreachable!("checked Ready above"),
                }
            } else {
                slots.map.insert(id, Slot::Callback(cb));
                return;
            }
        };
        if let Some(v) = ready {
            cb(v);
        }
    }

    /// Deliver a value: invokes a registered callback (outside the lock),
    /// wakes a blocking waiter, or — on store-unregistered maps — parks it
    /// for a later taker. Non-storing maps drop values for unknown ids (the
    /// waiter abandoned its slot).
    pub fn fulfill(&self, id: u64, value: T) {
        let mut value = Some(value);
        let mut callback = None;
        {
            let mut slots = self.slots.lock();
            if matches!(slots.map.get(&id), Some(Slot::Callback(_))) {
                if let Some(Slot::Callback(cb)) = slots.map.remove(&id) {
                    callback = Some(cb);
                }
            } else {
                let known = slots.map.contains_key(&id);
                if known || self.store_unregistered {
                    if !matches!(slots.map.get(&id), Some(Slot::Ready(..))) {
                        slots.fulfilled += 1;
                    }
                    let v = value.take().expect("value present");
                    slots.map.insert(id, Slot::Ready(v, Instant::now()));
                    self.cv.notify_all();
                }
            }
            // Sweep abandoned (fulfilled, never-claimed) slots — but only
            // when enough have accumulated and not more often than ttl/4,
            // so steady traffic never pays an O(n) scan per completion.
            if let Some(ttl) = self.ttl {
                if slots.fulfilled > SWEEP_THRESHOLD && slots.last_sweep.elapsed() >= ttl / 4 {
                    Self::sweep_slots(&mut slots, ttl);
                }
            }
        }
        // Invoked outside the lock: the callback may do arbitrary work
        // (encode + fabric send) and must not hold up other completions.
        if let Some(cb) = callback {
            cb(value.take().expect("value present"));
        }
    }

    /// Take a fulfilled value without blocking.
    pub fn try_take(&self, id: u64) -> Option<T> {
        let mut slots = self.slots.lock();
        if matches!(slots.map.get(&id), Some(Slot::Ready(..))) {
            slots.fulfilled = slots.fulfilled.saturating_sub(1);
            match slots.map.remove(&id) {
                Some(Slot::Ready(v, _)) => return Some(v),
                _ => unreachable!("checked Ready above"),
            }
        }
        None
    }

    /// Block up to `timeout` for a value. On timeout, non-storing maps
    /// abandon the slot (a late value is dropped, not leaked);
    /// store-unregistered maps keep it so a later wait or take still
    /// succeeds.
    pub fn wait(&self, id: u64, timeout: Duration) -> Option<T> {
        let deadline = Instant::now() + timeout;
        let mut slots = self.slots.lock();
        loop {
            if matches!(slots.map.get(&id), Some(Slot::Ready(..))) {
                slots.fulfilled = slots.fulfilled.saturating_sub(1);
                match slots.map.remove(&id) {
                    Some(Slot::Ready(v, _)) => return Some(v),
                    _ => unreachable!("checked Ready above"),
                }
            }
            let now = Instant::now();
            if now >= deadline {
                if !self.store_unregistered {
                    slots.map.remove(&id);
                }
                return None;
            }
            self.cv.wait_for(&mut slots, deadline - now);
        }
    }

    /// Run the TTL sweep now (tests, shutdown): drops fulfilled slots older
    /// than the TTL. No-op on maps without one.
    pub fn sweep(&self) {
        if let Some(ttl) = self.ttl {
            Self::sweep_slots(&mut self.slots.lock(), ttl);
        }
    }

    /// Slots currently tracked (waiting, fulfilled or callback).
    pub fn len(&self) -> usize {
        self.slots.lock().map.len()
    }

    /// True when nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn sweep_slots(slots: &mut Slots<T>, ttl: Duration) {
        slots
            .map
            .retain(|_, slot| !matches!(slot, Slot::Ready(_, at) if at.elapsed() >= ttl));
        slots.fulfilled = slots
            .map
            .values()
            .filter(|s| matches!(s, Slot::Ready(..)))
            .count();
        slots.last_sweep = Instant::now();
    }
}

/// Blocking result slots shared between awaiters and the message bus; also
/// used by embedders building their own gateways (e.g. the container
/// baseline platform). A store-unregistered [`PendingMap`] over
/// [`CallResult`], keyed by call id.
#[derive(Debug, Default)]
pub struct Pending {
    map: PendingMap<CallResult>,
}

impl Pending {
    /// Reserve a slot for a call about to be dispatched.
    pub fn register(&self, id: u64) {
        self.map.register(id);
    }

    /// Register a completion callback for a call about to be dispatched
    /// (the batch-submit path: no thread parks per in-flight call).
    pub fn register_callback(&self, id: u64, cb: PendingCallback<CallResult>) {
        self.map.register_callback(id, cb);
    }

    /// Deliver a result, waking any waiter or invoking its callback.
    pub fn fulfill(&self, result: CallResult) {
        self.map.fulfill(result.id.0, result);
    }

    /// Take a completed result without blocking.
    pub fn try_take(&self, id: u64) -> Option<CallResult> {
        self.map.try_take(id)
    }

    /// Block up to `timeout` for a result.
    pub fn wait(&self, id: u64, timeout: Duration) -> Option<CallResult> {
        self.map.wait(id, timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    #[test]
    fn store_unregistered_parks_early_results() {
        let m: PendingMap<u32> = PendingMap::new(true, None);
        m.fulfill(7, 70);
        assert_eq!(m.try_take(7), Some(70));
        assert_eq!(m.try_take(7), None, "taken once");
    }

    #[test]
    fn non_storing_drops_unregistered_results() {
        let m: PendingMap<u32> = PendingMap::new(false, None);
        m.fulfill(7, 70);
        assert_eq!(m.try_take(7), None);
        assert!(m.is_empty());
        // Registered ids are delivered.
        m.register(8);
        m.fulfill(8, 80);
        assert_eq!(m.try_take(8), Some(80));
    }

    #[test]
    fn wait_timeout_policies_differ() {
        let storing: PendingMap<u32> = PendingMap::new(true, None);
        storing.register(1);
        assert_eq!(storing.wait(1, Duration::from_millis(5)), None);
        // Slot survived the timeout: a late result still lands.
        storing.fulfill(1, 10);
        assert_eq!(storing.try_take(1), Some(10));

        let dropping: PendingMap<u32> = PendingMap::new(false, None);
        dropping.register(1);
        assert_eq!(dropping.wait(1, Duration::from_millis(5)), None);
        // Slot abandoned: the late result is dropped.
        dropping.fulfill(1, 10);
        assert_eq!(dropping.try_take(1), None);
    }

    #[test]
    fn callback_fires_once_from_fulfill() {
        let m: PendingMap<u32> = PendingMap::new(false, None);
        let hits = Arc::new(AtomicU32::new(0));
        let h = Arc::clone(&hits);
        m.register_callback(
            3,
            Box::new(move |v| {
                assert_eq!(v, 33);
                h.fetch_add(1, Ordering::Relaxed);
            }),
        );
        m.fulfill(3, 33);
        m.fulfill(3, 34); // second fulfilment has no slot to land in
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        assert!(m.is_empty());
    }

    #[test]
    fn callback_registered_after_parked_result_fires_immediately() {
        let m: PendingMap<u32> = PendingMap::new(true, None);
        m.fulfill(5, 55);
        let hits = Arc::new(AtomicU32::new(0));
        let h = Arc::clone(&hits);
        m.register_callback(
            5,
            Box::new(move |v| {
                assert_eq!(v, 55);
                h.fetch_add(1, Ordering::Relaxed);
            }),
        );
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        assert!(m.is_empty());
    }

    #[test]
    fn blocking_waiter_wakes_on_fulfill() {
        let m: Arc<PendingMap<u32>> = Arc::new(PendingMap::new(true, None));
        m.register(9);
        let waiter = {
            let m = Arc::clone(&m);
            std::thread::spawn(move || m.wait(9, Duration::from_secs(5)))
        };
        std::thread::sleep(Duration::from_millis(10));
        m.fulfill(9, 99);
        assert_eq!(waiter.join().unwrap(), Some(99));
    }

    #[test]
    fn ttl_sweep_drops_only_stale_ready_slots() {
        let m: PendingMap<u32> = PendingMap::new(false, Some(Duration::ZERO));
        m.register(1); // waiting: must survive
        m.register_callback(2, Box::new(|_| {})); // callback: must survive
        m.register(3);
        m.fulfill(3, 30); // ready with ttl 0: sweepable
        m.sweep();
        assert_eq!(m.len(), 2, "only the stale Ready slot is swept");
        assert_eq!(m.try_take(3), None);
    }

    #[test]
    fn pending_wrapper_keeps_call_result_semantics() {
        use faasm_sched::CallId;
        let p = Pending::default();
        p.register(4);
        p.fulfill(CallResult::success(CallId(4), b"out".to_vec()));
        let r = p.wait(4, Duration::from_millis(50)).expect("fulfilled");
        assert_eq!(r.output, b"out");
        // Unregistered results are parked (message-bus semantics).
        p.fulfill(CallResult::success(CallId(5), vec![]));
        assert!(p.try_take(5).is_some());
    }
}
