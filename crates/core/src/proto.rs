//! Proto-Faaslets: ahead-of-time snapshots for microsecond restores (§5.2).
//!
//! A Proto-Faaslet captures "a function's stack, heap, function table, stack
//! pointer and data" — in the FVM that is the [`faasm_fvm::InstanceSnapshot`]
//! (memory pages, globals, indirect-call table; the operand stack is empty
//! between calls by construction). Restores use copy-on-write page mappings,
//! so their cost is O(pages touched), not O(snapshot size). Snapshots are
//! plain data: serialising one and shipping it through the shared object
//! store gives the paper's cross-host, OS-independent restores.

use std::sync::Arc;

use bytes::{Buf, BufMut};
use faasm_fvm::InstanceSnapshot;
use faasm_mem::MemorySnapshot;

/// A snapshot section too large for its `u32` length prefix: encoding it
/// would wrap and corrupt the frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtoEncodeError {
    /// Which section overflowed.
    pub section: &'static str,
    /// Its actual length in elements/bytes.
    pub len: usize,
}

impl std::fmt::Display for ProtoEncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "proto section {:?} length {} exceeds the u32 length prefix",
            self.section, self.len
        )
    }
}

impl std::error::Error for ProtoEncodeError {}

/// The `u32` length prefix for a section, or the error naming it.
fn checked_len(len: usize, section: &'static str) -> Result<u32, ProtoEncodeError> {
    u32::try_from(len).map_err(|_| ProtoEncodeError { section, len })
}

/// A restorable snapshot of an initialised Faaslet.
#[derive(Debug, Clone)]
pub struct ProtoFaaslet {
    /// Owning user.
    pub user: String,
    /// Function name.
    pub function: String,
    /// The captured execution state.
    pub snapshot: InstanceSnapshot,
}

impl ProtoFaaslet {
    /// Approximate in-memory size (bytes) — snapshot accounting for Tab. 3.
    pub fn size_bytes(&self) -> usize {
        self.snapshot.size_bytes()
    }

    /// Serialise for the shared object store (cross-host distribution).
    ///
    /// Every variable-length section carries a `u32` length prefix, so a
    /// field at or beyond 4 GiB cannot be represented: `len as u32` would
    /// silently wrap and corrupt the frame for every future restore. Like
    /// the gateway codec's `try_encode_frame`, the bound is checked in all
    /// builds and oversized snapshots fail fast at the encoder.
    ///
    /// # Errors
    ///
    /// [`ProtoEncodeError`] naming the offending section; nothing is
    /// emitted, so no reader ever sees a wrapped prefix.
    pub fn to_bytes(&self) -> Result<Vec<u8>, ProtoEncodeError> {
        let mut out = Vec::new();
        out.put_u32_le(checked_len(self.user.len(), "user")?);
        out.put_slice(self.user.as_bytes());
        out.put_u32_le(checked_len(self.function.len(), "function")?);
        out.put_slice(self.function.as_bytes());
        match &self.snapshot.mem {
            Some(mem) => {
                out.put_u8(1);
                let bytes = mem.to_bytes();
                out.put_u32_le(checked_len(bytes.len(), "memory snapshot")?);
                out.put_slice(&bytes);
            }
            None => out.put_u8(0),
        }
        out.put_u32_le(checked_len(self.snapshot.globals.len(), "globals")?);
        for g in &self.snapshot.globals {
            out.put_u64_le(*g);
        }
        out.put_u32_le(checked_len(self.snapshot.table.len(), "table")?);
        for t in &self.snapshot.table {
            match t {
                Some(f) => {
                    out.put_u8(1);
                    out.put_u32_le(*f);
                }
                None => out.put_u8(0),
            }
        }
        Ok(out)
    }

    /// Deserialise a snapshot previously produced by
    /// [`ProtoFaaslet::to_bytes`]; `None` on malformed input.
    pub fn from_bytes(mut buf: &[u8]) -> Option<ProtoFaaslet> {
        fn get_string(buf: &mut &[u8]) -> Option<String> {
            if buf.remaining() < 4 {
                return None;
            }
            let len = buf.get_u32_le() as usize;
            if buf.remaining() < len {
                return None;
            }
            let mut v = vec![0u8; len];
            buf.copy_to_slice(&mut v);
            String::from_utf8(v).ok()
        }
        let user = get_string(&mut buf)?;
        let function = get_string(&mut buf)?;
        if buf.remaining() < 1 {
            return None;
        }
        let mem = match buf.get_u8() {
            0 => None,
            1 => {
                if buf.remaining() < 4 {
                    return None;
                }
                let len = buf.get_u32_le() as usize;
                if buf.remaining() < len {
                    return None;
                }
                let mut v = vec![0u8; len];
                buf.copy_to_slice(&mut v);
                Some(MemorySnapshot::from_bytes(&v)?)
            }
            _ => return None,
        };
        if buf.remaining() < 4 {
            return None;
        }
        let ng = buf.get_u32_le() as usize;
        if buf.remaining() < ng * 8 {
            return None;
        }
        let globals = (0..ng).map(|_| buf.get_u64_le()).collect();
        if buf.remaining() < 4 {
            return None;
        }
        let nt = buf.get_u32_le() as usize;
        // Each entry costs ≥ 1 byte: a hostile count can claim at most what
        // the buffer holds, so the count cannot drive a huge preallocation.
        if nt > buf.remaining() {
            return None;
        }
        let mut table = Vec::with_capacity(nt);
        for _ in 0..nt {
            if buf.remaining() < 1 {
                return None;
            }
            table.push(match buf.get_u8() {
                0 => None,
                1 => {
                    if buf.remaining() < 4 {
                        return None;
                    }
                    Some(buf.get_u32_le())
                }
                _ => return None,
            });
        }
        if buf.has_remaining() {
            return None;
        }
        Some(ProtoFaaslet {
            user,
            function,
            snapshot: InstanceSnapshot {
                mem,
                globals,
                table,
            },
        })
    }

    /// The object-store path for a function's Proto-Faaslet.
    pub fn store_path(user: &str, function: &str) -> String {
        format!("shared/proto/{user}/{function}")
    }
}

/// Shared handle used throughout the runtime.
pub type ProtoRef = Arc<ProtoFaaslet>;

#[cfg(test)]
mod tests {
    use super::*;
    use faasm_fvm::prelude::*;

    fn sample_proto() -> ProtoFaaslet {
        let mut b = ModuleBuilder::new();
        b.memory(2, 4);
        b.global(ValType::I64, true, Val::I64(-5));
        b.table(3);
        let sig = b.sig(FuncType::default());
        let f = b.func(sig, vec![], vec![Instr::End]);
        b.elem(0, vec![f]);
        b.export_func("main", f);
        let object = ObjectModule::prepare(b.build()).unwrap();
        let mut inst = Instance::new(object, &Linker::new(), Box::new(())).unwrap();
        inst.memory_mut()
            .unwrap()
            .write(100, b"warm state")
            .unwrap();
        ProtoFaaslet {
            user: "alice".into(),
            function: "f".into(),
            snapshot: inst.snapshot(),
        }
    }

    #[test]
    fn roundtrip_serialisation() {
        let proto = sample_proto();
        let bytes = proto.to_bytes().unwrap();
        let back = ProtoFaaslet::from_bytes(&bytes).unwrap();
        assert_eq!(back.user, "alice");
        assert_eq!(back.function, "f");
        assert_eq!(back.snapshot.globals, proto.snapshot.globals);
        assert_eq!(back.snapshot.table, proto.snapshot.table);
        let mem = back.snapshot.mem.unwrap();
        let restored = faasm_mem::LinearMemory::restore(&mem);
        let mut buf = [0u8; 10];
        restored.read(100, &mut buf).unwrap();
        assert_eq!(&buf, b"warm state");
    }

    #[test]
    fn oversized_sections_error_instead_of_wrapping() {
        // The length check itself, with sizes no test could allocate.
        assert_eq!(checked_len(0, "x"), Ok(0));
        assert_eq!(checked_len(u32::MAX as usize, "x"), Ok(u32::MAX));
        let err = checked_len(u32::MAX as usize + 1, "memory snapshot").unwrap_err();
        assert_eq!(err.section, "memory snapshot");
        assert_eq!(err.len, u32::MAX as usize + 1);
        assert!(err.to_string().contains("memory snapshot"));
        // In-bounds snapshots still encode.
        assert!(sample_proto().to_bytes().is_ok());
    }

    #[test]
    fn hostile_table_count_rejected_without_allocation() {
        // A frame claiming u32::MAX table entries but carrying none: decode
        // must reject before preallocating for the claimed count.
        let proto = ProtoFaaslet {
            user: "u".into(),
            function: "f".into(),
            snapshot: InstanceSnapshot {
                mem: None,
                globals: vec![],
                table: vec![],
            },
        };
        let mut bytes = proto.to_bytes().unwrap();
        let tail = bytes.len() - 4;
        bytes[tail..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(ProtoFaaslet::from_bytes(&bytes).is_none());
    }

    #[test]
    fn malformed_rejected() {
        let bytes = sample_proto().to_bytes().unwrap();
        assert!(ProtoFaaslet::from_bytes(&[]).is_none());
        for cut in [1usize, 8, 16, bytes.len() - 1] {
            assert!(
                ProtoFaaslet::from_bytes(&bytes[..cut.min(bytes.len() - 1)]).is_none(),
                "cut {cut}"
            );
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(ProtoFaaslet::from_bytes(&trailing).is_none());
    }

    #[test]
    fn store_path_is_shared_namespace() {
        let p = ProtoFaaslet::store_path("u", "f");
        assert!(p.starts_with("shared/"));
        assert!(p.contains("u") && p.contains("f"));
    }

    #[test]
    fn size_accounts_memory() {
        let proto = sample_proto();
        assert!(proto.size_bytes() >= 2 * faasm_mem::PAGE_SIZE);
    }
}
