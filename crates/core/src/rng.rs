//! Deterministic guest randomness for the `getrandom` host call.
//!
//! The paper's `getrandom` "uses underlying host /dev/urandom" (Tab. 2); for
//! a reproducible test/bench suite we substitute a per-Faaslet splitmix64
//! stream seeded from the Faaslet id (documented in DESIGN.md §7).

/// A splitmix64 pseudo-random generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed a stream.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Fill a buffer with random bytes.
    pub fn fill(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = SplitMix64::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn fill_covers_partial_chunks() {
        let mut r = SplitMix64::new(1);
        let mut buf = [0u8; 13];
        r.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn reasonable_distribution() {
        let mut r = SplitMix64::new(42);
        let mut ones = 0u32;
        for _ in 0..1000 {
            ones += r.next_u64().count_ones();
        }
        // ~32000 expected; loose bounds.
        assert!((28_000..36_000).contains(&ones), "ones = {ones}");
    }
}
