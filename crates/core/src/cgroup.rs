//! CPU isolation: the cgroup/CFS analogue (§3.1).
//!
//! "Each function is executed by a dedicated thread of a shared runtime
//! process. This thread is assigned to a cgroup with a share of CPU equal to
//! that of all Faaslets. The Linux CFS ensures that these threads are
//! scheduled with equal CPU time."
//!
//! The FVM charges fuel per instruction and calls
//! [`faasm_fvm::CpuController::acquire_slice`] at every slice boundary. A
//! [`CgroupCpu`] implements a CFS-style fairness rule over those boundaries:
//! each member tracks a virtual runtime (total fuel granted), and a member
//! may only take a new slice when its vruntime is within one slice of the
//! minimum vruntime among *runnable* members. Threads running ahead block on
//! a condvar until the laggards catch up, so co-located Faaslets progress at
//! equal rates regardless of how the OS schedules the underlying threads.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use faasm_fvm::{CpuController, Trap};
use parking_lot::{Condvar, Mutex};

#[derive(Debug, Default)]
struct GroupState {
    /// vruntime (fuel granted so far) per runnable member.
    runnable: HashMap<u64, u64>,
}

/// A CPU control group shared by the Faaslets of one runtime instance.
#[derive(Debug)]
pub struct CgroupCpu {
    state: Mutex<GroupState>,
    cond: Condvar,
    next_id: AtomicU64,
    /// Allowed lead over the slowest runnable member, in fuel units.
    tolerance: u64,
}

impl CgroupCpu {
    /// A group allowing members to lead by at most `tolerance` fuel units.
    pub fn new(tolerance: u64) -> Arc<CgroupCpu> {
        Arc::new(CgroupCpu {
            state: Mutex::new(GroupState::default()),
            cond: Condvar::new(),
            next_id: AtomicU64::new(1),
            tolerance: tolerance.max(1),
        })
    }

    /// Join the group, becoming runnable at the current minimum vruntime (a
    /// new Faaslet must not be owed the cluster's entire history).
    pub fn join(self: &Arc<CgroupCpu>) -> CgroupShare {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut s = self.state.lock();
        let start = s.runnable.values().min().copied().unwrap_or(0);
        s.runnable.insert(id, start);
        drop(s);
        CgroupShare {
            group: Arc::clone(self),
            id,
        }
    }

    /// Number of runnable members.
    pub fn runnable(&self) -> usize {
        self.state.lock().runnable.len()
    }

    fn leave(&self, id: u64) {
        let mut s = self.state.lock();
        s.runnable.remove(&id);
        drop(s);
        self.cond.notify_all();
    }

    fn park(&self, id: u64) {
        let mut s = self.state.lock();
        s.runnable.remove(&id);
        drop(s);
        self.cond.notify_all();
    }

    fn unpark(&self, id: u64) {
        let mut s = self.state.lock();
        let start = s.runnable.values().min().copied().unwrap_or(0);
        s.runnable.insert(id, start);
        drop(s);
        self.cond.notify_all();
    }

    fn acquire(&self, id: u64, slice: u64) -> Result<(), Trap> {
        let mut s = self.state.lock();
        // A member that never joined (or left) runs unconstrained; this only
        // happens through misuse, so it fails safe toward progress.
        let Some(v) = s.runnable.get(&id).copied() else {
            return Ok(());
        };
        let new_v = v + slice;
        s.runnable.insert(id, new_v);
        loop {
            let min = s.runnable.values().min().copied().unwrap_or(new_v);
            if new_v <= min + self.tolerance {
                break;
            }
            self.cond.wait(&mut s);
        }
        drop(s);
        // Our own progression may unblock siblings when we were the minimum.
        self.cond.notify_all();
        Ok(())
    }
}

/// One Faaslet's membership in a [`CgroupCpu`].
#[derive(Debug)]
pub struct CgroupShare {
    group: Arc<CgroupCpu>,
    id: u64,
}

impl CgroupShare {
    /// Mark this member not-runnable (it is blocking on I/O or `await_call`)
    /// so it does not hold back the rest of the group.
    pub fn park(&self) {
        self.group.park(self.id);
    }

    /// Mark runnable again after a park.
    pub fn unpark(&self) {
        self.group.unpark(self.id);
    }
}

impl CpuController for CgroupShare {
    fn acquire_slice(&self, slice: u64) -> Result<(), Trap> {
        self.group.acquire(self.id, slice)
    }
}

impl Drop for CgroupShare {
    fn drop(&mut self) {
        self.group.leave(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn single_member_never_blocks() {
        let g = CgroupCpu::new(100);
        let m = g.join();
        for _ in 0..1000 {
            m.acquire_slice(10).unwrap();
        }
        assert_eq!(g.runnable(), 1);
        drop(m);
        assert_eq!(g.runnable(), 0);
    }

    #[test]
    fn members_progress_in_lockstep() {
        let g = CgroupCpu::new(64);
        let a = Arc::new(g.join());
        let b = Arc::new(g.join());
        let progress_a = Arc::new(AtomicU64::new(0));
        let progress_b = Arc::new(AtomicU64::new(0));

        let (pa, pb) = (Arc::clone(&progress_a), Arc::clone(&progress_b));
        let (aa, bb) = (Arc::clone(&a), Arc::clone(&b));
        let ta = std::thread::spawn(move || {
            for _ in 0..200 {
                aa.acquire_slice(64).unwrap();
                pa.fetch_add(64, Ordering::SeqCst);
            }
        });
        let tb = std::thread::spawn(move || {
            for _ in 0..200 {
                bb.acquire_slice(64).unwrap();
                pb.fetch_add(64, Ordering::SeqCst);
                // B is artificially slow.
                std::thread::sleep(Duration::from_micros(50));
            }
        });
        // While both run, A cannot lead B by more than tolerance + slice.
        for _ in 0..50 {
            let da = progress_a.load(Ordering::SeqCst) as i64;
            let db = progress_b.load(Ordering::SeqCst) as i64;
            assert!(
                (da - db).abs() <= 64 * 3,
                "fuel divergence too large: a={da} b={db}"
            );
            std::thread::sleep(Duration::from_micros(100));
        }
        ta.join().unwrap();
        tb.join().unwrap();
    }

    #[test]
    fn parked_member_does_not_block_group() {
        let g = CgroupCpu::new(10);
        let a = g.join();
        let b = g.join();
        // B parks (blocked on await); A must be free to run far ahead.
        b.park();
        for _ in 0..100 {
            a.acquire_slice(10).unwrap();
        }
        b.unpark();
        // B rejoins at current minimum, so neither side deadlocks.
        b.acquire_slice(10).unwrap();
        a.acquire_slice(10).unwrap();
    }

    #[test]
    fn leaving_unblocks_waiters() {
        let g = CgroupCpu::new(10);
        let a = g.join();
        let b = g.join();
        let t = std::thread::spawn(move || {
            // Run far ahead; will block on b's vruntime.
            for _ in 0..50 {
                a.acquire_slice(10).unwrap();
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        drop(b); // leave the group
        t.join().unwrap();
    }
}
