//! Runtime metrics: the measurements behind the paper's evaluation.
//!
//! * **Billable memory** (Fig. 6c): "the product of the peak function memory
//!   multiplied by the number and runtime of functions, in units of
//!   GB-seconds ... all memory measurements include the containers/Faaslets
//!   and their state." Faaslets are charged their PSS (shared state divided
//!   among sharers), which is exactly what makes FAASM's line flat.
//! * **Initialisation times** (Tab. 3, Fig. 10): cold/warm/restore paths are
//!   timed separately.
//! * **CPU cycles** (Tab. 3): total interpreter fuel.

use std::sync::atomic::{AtomicU64, Ordering};

use faasm_telemetry::{Hist, HistSnapshot};
use parking_lot::Mutex;

/// Which path created a Faaslet for a call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartKind {
    /// Reused an idle warm Faaslet.
    Warm,
    /// Built from scratch (instantiate + initialise).
    Cold,
    /// Restored from a Proto-Faaslet snapshot.
    ProtoRestore,
}

/// Aggregated runtime metrics for one instance (or summed cluster-wide).
#[derive(Debug, Default)]
pub struct Metrics {
    calls: AtomicU64,
    warm_starts: AtomicU64,
    cold_starts: AtomicU64,
    proto_restores: AtomicU64,
    forwarded: AtomicU64,
    exec_ns: AtomicU64,
    fuel: AtomicU64,
    guest_instrs: AtomicU64,
    /// Σ (pss_bytes × duration_ns) per call; converted to GB-s on read.
    billable_byte_ns: Mutex<f64>,
    init_ns: Mutex<Vec<u64>>,
}

impl Metrics {
    /// Fresh zeroed metrics.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Record a completed call.
    pub fn record_call(&self, exec_ns: u64, fuel: u64, guest_instrs: u64, pss_bytes: f64) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.exec_ns.fetch_add(exec_ns, Ordering::Relaxed);
        self.fuel.fetch_add(fuel, Ordering::Relaxed);
        self.guest_instrs.fetch_add(guest_instrs, Ordering::Relaxed);
        *self.billable_byte_ns.lock() += pss_bytes * exec_ns as f64;
    }

    /// Record how a Faaslet was obtained and how long that took.
    pub fn record_start(&self, kind: StartKind, init_ns: u64) {
        match kind {
            StartKind::Warm => {
                self.warm_starts.fetch_add(1, Ordering::Relaxed);
            }
            StartKind::Cold => {
                self.cold_starts.fetch_add(1, Ordering::Relaxed);
                self.init_ns.lock().push(init_ns);
            }
            StartKind::ProtoRestore => {
                self.proto_restores.fetch_add(1, Ordering::Relaxed);
                self.init_ns.lock().push(init_ns);
            }
        }
    }

    /// Record a call forwarded to another host.
    pub fn record_forward(&self) {
        self.forwarded.fetch_add(1, Ordering::Relaxed);
    }

    /// Completed calls.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Warm-start count.
    pub fn warm_starts(&self) -> u64 {
        self.warm_starts.load(Ordering::Relaxed)
    }

    /// Cold-start count (full instantiations).
    pub fn cold_starts(&self) -> u64 {
        self.cold_starts.load(Ordering::Relaxed)
    }

    /// Proto-Faaslet restore count.
    pub fn proto_restores(&self) -> u64 {
        self.proto_restores.load(Ordering::Relaxed)
    }

    /// Calls forwarded to other hosts.
    pub fn forwarded(&self) -> u64 {
        self.forwarded.load(Ordering::Relaxed)
    }

    /// Total guest execution time in nanoseconds.
    pub fn exec_ns(&self) -> u64 {
        self.exec_ns.load(Ordering::Relaxed)
    }

    /// Total interpreter fuel (the CPU-cycles analogue of Tab. 3).
    pub fn fuel(&self) -> u64 {
        self.fuel.load(Ordering::Relaxed)
    }

    /// Total VM operations retired (guest CPU). Unlike [`Metrics::fuel`]
    /// — a tier-independent *source* instruction count — this counts ops
    /// the engine actually dispatched, so the lowered tier reports fewer
    /// for the same work; fuel ÷ instrs is the mean superinstruction width.
    pub fn guest_instrs(&self) -> u64 {
        self.guest_instrs.load(Ordering::Relaxed)
    }

    /// Billable memory in GB-seconds (Fig. 6c).
    pub fn billable_gb_seconds(&self) -> f64 {
        *self.billable_byte_ns.lock() / 1e18
    }

    /// Initialisation times (cold + proto restores), nanoseconds.
    pub fn init_times_ns(&self) -> Vec<u64> {
        self.init_ns.lock().clone()
    }

    /// Mean initialisation time in nanoseconds (0 when none recorded).
    pub fn mean_init_ns(&self) -> u64 {
        let times = self.init_ns.lock();
        if times.is_empty() {
            return 0;
        }
        times.iter().sum::<u64>() / times.len() as u64
    }

    /// A coherent point-in-time copy of every counter. Individual getters
    /// race against concurrent recording, so an exporter reading them one
    /// by one can tabulate counters from different instants (e.g. more
    /// completed calls than started ones); tables and JSON dumps should
    /// read one snapshot instead.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            calls: self.calls.load(Ordering::Relaxed),
            warm_starts: self.warm_starts.load(Ordering::Relaxed),
            cold_starts: self.cold_starts.load(Ordering::Relaxed),
            proto_restores: self.proto_restores.load(Ordering::Relaxed),
            forwarded: self.forwarded.load(Ordering::Relaxed),
            exec_ns: self.exec_ns.load(Ordering::Relaxed),
            fuel: self.fuel.load(Ordering::Relaxed),
            guest_instrs: self.guest_instrs.load(Ordering::Relaxed),
            billable_gb_seconds: self.billable_gb_seconds(),
            mean_init_ns: self.mean_init_ns(),
        }
    }
}

/// A point-in-time copy of [`Metrics`], taken in one pass.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Completed calls.
    pub calls: u64,
    /// Warm starts.
    pub warm_starts: u64,
    /// Cold starts.
    pub cold_starts: u64,
    /// Proto-Faaslet restores.
    pub proto_restores: u64,
    /// Calls forwarded to other hosts.
    pub forwarded: u64,
    /// Total guest execution nanoseconds.
    pub exec_ns: u64,
    /// Total interpreter fuel.
    pub fuel: u64,
    /// Total VM operations retired (dispatch count, tier-dependent).
    pub guest_instrs: u64,
    /// Billable memory in GB-seconds.
    pub billable_gb_seconds: f64,
    /// Mean initialisation time (cold + restore), nanoseconds.
    pub mean_init_ns: u64,
}

impl MetricsSnapshot {
    /// Sum two snapshots (cluster-wide aggregation).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        self.calls += other.calls;
        self.warm_starts += other.warm_starts;
        self.cold_starts += other.cold_starts;
        self.proto_restores += other.proto_restores;
        self.forwarded += other.forwarded;
        self.exec_ns += other.exec_ns;
        self.fuel += other.fuel;
        self.guest_instrs += other.guest_instrs;
        self.billable_gb_seconds += other.billable_gb_seconds;
        // Means do not sum; keep the max as a representative figure.
        self.mean_init_ns = self.mean_init_ns.max(other.mean_init_ns);
    }
}

/// Ingress-tier metrics: what the gateway in front of a cluster observes.
///
/// Kept here (rather than in `faasm-gateway`) so every metrics consumer —
/// the figures binary, benches, embedders — reads one crate, and so the
/// gateway's numbers compose with [`percentile`] like the runtime's do.
#[derive(Debug, Default)]
pub struct GatewayMetrics {
    admitted: AtomicU64,
    completed: AtomicU64,
    shed_overloaded: AtomicU64,
    shed_ratelimited: AtomicU64,
    shed_expired: AtomicU64,
    batches: AtomicU64,
    batch_items: AtomicU64,
    prewarmed: AtomicU64,
    retired: AtomicU64,
    tier_scaleups: AtomicU64,
    /// Queueing-delay distribution: a lock-free log2-bucket histogram.
    /// One sample lands per dispatched request, so the previous sorted-Vec
    /// ring cost a lock plus an O(n log n) sort per percentile read and
    /// 512 KiB of samples; the histogram is 64 atomic counters — fixed
    /// memory at any sample volume, and percentile reads never allocate.
    queue_delay_ns: Hist,
}

impl GatewayMetrics {
    /// Fresh zeroed metrics.
    pub fn new() -> GatewayMetrics {
        GatewayMetrics::default()
    }

    /// Record a request admitted past admission control.
    pub fn record_admitted(&self) {
        self.admitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a request completed end to end.
    pub fn record_completed(&self) {
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a request shed because its tenant queue was full.
    pub fn record_shed_overloaded(&self) {
        self.shed_overloaded.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a request shed by the tenant's token bucket.
    pub fn record_shed_ratelimited(&self) {
        self.shed_ratelimited.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a request shed because its deadline passed while queued.
    pub fn record_shed_expired(&self) {
        self.shed_expired.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one dispatched batch of `items` requests.
    pub fn record_batch(&self, items: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batch_items.fetch_add(items as u64, Ordering::Relaxed);
    }

    /// Record time a request spent queued before dispatch.
    pub fn record_queue_delay_ns(&self, ns: u64) {
        self.queue_delay_ns.record(ns);
    }

    /// Record `n` Faaslets pre-warmed by the autoscaler.
    pub fn record_prewarm(&self, n: usize) {
        self.prewarmed.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Record `n` idle Faaslets retired by the autoscaler.
    pub fn record_retire(&self, n: usize) {
        self.retired.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Record one live state-shard addition driven by tier load.
    pub fn record_tier_scale(&self) {
        self.tier_scaleups.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests admitted past admission control.
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Requests completed end to end.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Requests shed with `Overloaded` (full queue).
    pub fn shed_overloaded(&self) -> u64 {
        self.shed_overloaded.load(Ordering::Relaxed)
    }

    /// Requests shed with `Overloaded` (rate limit).
    pub fn shed_ratelimited(&self) -> u64 {
        self.shed_ratelimited.load(Ordering::Relaxed)
    }

    /// Requests shed with `Expired` (deadline passed in queue).
    pub fn shed_expired(&self) -> u64 {
        self.shed_expired.load(Ordering::Relaxed)
    }

    /// Total requests shed for any reason.
    pub fn shed_total(&self) -> u64 {
        self.shed_overloaded() + self.shed_ratelimited() + self.shed_expired()
    }

    /// Dispatched batches.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Mean requests per dispatched batch (0 when none dispatched).
    pub fn batch_occupancy(&self) -> f64 {
        let b = self.batches.load(Ordering::Relaxed);
        if b == 0 {
            return 0.0;
        }
        self.batch_items.load(Ordering::Relaxed) as f64 / b as f64
    }

    /// Faaslets pre-warmed by the autoscaler.
    pub fn prewarmed(&self) -> u64 {
        self.prewarmed.load(Ordering::Relaxed)
    }

    /// Idle Faaslets retired by the autoscaler.
    pub fn retired(&self) -> u64 {
        self.retired.load(Ordering::Relaxed)
    }

    /// State shards added live by the tier autoscaler.
    pub fn tier_scaleups(&self) -> u64 {
        self.tier_scaleups.load(Ordering::Relaxed)
    }

    /// Queueing-delay percentile in nanoseconds (0.0–1.0; 0 when empty).
    /// Log2-bucket approximation: the estimate lands within a factor of
    /// two of the exact sample, clamped to the observed min/max.
    pub fn queue_delay_percentile_ns(&self, p: f64) -> u64 {
        self.queue_delay_ns.percentile(p.clamp(0.0, 1.0) * 100.0)
    }

    /// p50 queueing delay in nanoseconds.
    pub fn queue_delay_p50_ns(&self) -> u64 {
        self.queue_delay_percentile_ns(0.5)
    }

    /// p99 queueing delay in nanoseconds.
    pub fn queue_delay_p99_ns(&self) -> u64 {
        self.queue_delay_percentile_ns(0.99)
    }

    /// A coherent point-in-time copy of every gateway counter plus the
    /// queue-delay histogram — see [`Metrics::snapshot`] for why exporters
    /// must not assemble tables from individual getters.
    pub fn snapshot(&self) -> GatewayMetricsSnapshot {
        GatewayMetricsSnapshot {
            admitted: self.admitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            shed_overloaded: self.shed_overloaded.load(Ordering::Relaxed),
            shed_ratelimited: self.shed_ratelimited.load(Ordering::Relaxed),
            shed_expired: self.shed_expired.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batch_items: self.batch_items.load(Ordering::Relaxed),
            prewarmed: self.prewarmed.load(Ordering::Relaxed),
            retired: self.retired.load(Ordering::Relaxed),
            tier_scaleups: self.tier_scaleups.load(Ordering::Relaxed),
            queue_delay: self.queue_delay_ns.snapshot(),
        }
    }
}

/// A point-in-time copy of [`GatewayMetrics`], taken in one pass.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GatewayMetricsSnapshot {
    /// Requests admitted past admission control.
    pub admitted: u64,
    /// Requests completed end to end.
    pub completed: u64,
    /// Requests shed because their tenant queue was full.
    pub shed_overloaded: u64,
    /// Requests shed by a tenant token bucket.
    pub shed_ratelimited: u64,
    /// Requests shed because their deadline passed while queued.
    pub shed_expired: u64,
    /// Dispatched batches.
    pub batches: u64,
    /// Requests carried by those batches.
    pub batch_items: u64,
    /// Faaslets pre-warmed by the autoscaler.
    pub prewarmed: u64,
    /// Idle Faaslets retired by the autoscaler.
    pub retired: u64,
    /// State shards added live by the tier autoscaler.
    pub tier_scaleups: u64,
    /// Queue-delay histogram at snapshot time.
    pub queue_delay: HistSnapshot,
}

impl GatewayMetricsSnapshot {
    /// Total requests shed for any reason.
    pub fn shed_total(&self) -> u64 {
        self.shed_overloaded + self.shed_ratelimited + self.shed_expired
    }

    /// Mean requests per dispatched batch (0 when none dispatched).
    pub fn batch_occupancy(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.batch_items as f64 / self.batches as f64
    }
}

/// Compute a latency percentile (0.0–1.0) from a sample set.
///
/// Returns 0 for empty input. Uses nearest-rank on a sorted copy.
pub fn percentile(samples: &[u64], p: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((p.clamp(0.0, 1.0)) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_accounting() {
        let m = Metrics::new();
        m.record_call(1_000_000, 500, 120, 1e9); // 1 GB for 1 ms
        m.record_call(1_000_000, 300, 80, 1e9);
        assert_eq!(m.calls(), 2);
        assert_eq!(m.fuel(), 800);
        assert_eq!(m.guest_instrs(), 200);
        assert_eq!(m.exec_ns(), 2_000_000);
        // 2 × (1 GB × 1 ms) = 0.002 GB-s.
        assert!((m.billable_gb_seconds() - 0.002).abs() < 1e-9);
    }

    #[test]
    fn start_kinds() {
        let m = Metrics::new();
        m.record_start(StartKind::Warm, 10);
        m.record_start(StartKind::Cold, 1000);
        m.record_start(StartKind::ProtoRestore, 100);
        assert_eq!(m.warm_starts(), 1);
        assert_eq!(m.cold_starts(), 1);
        assert_eq!(m.proto_restores(), 1);
        // Warm starts do not contribute init samples.
        assert_eq!(m.init_times_ns().len(), 2);
        assert_eq!(m.mean_init_ns(), 550);
        m.record_forward();
        assert_eq!(m.forwarded(), 1);
    }

    #[test]
    fn gateway_metrics_accounting() {
        let m = GatewayMetrics::new();
        m.record_admitted();
        m.record_batch(3);
        m.record_batch(1);
        m.record_shed_overloaded();
        m.record_shed_ratelimited();
        m.record_shed_expired();
        m.record_prewarm(2);
        m.record_retire(1);
        assert_eq!(m.admitted(), 1);
        assert_eq!(m.shed_total(), 3);
        assert_eq!(m.batches(), 2);
        assert!((m.batch_occupancy() - 2.0).abs() < 1e-9);
        assert_eq!(m.prewarmed(), 2);
        assert_eq!(m.retired(), 1);
    }

    #[test]
    fn gateway_delay_storm_stays_within_fixed_memory() {
        // 1M-sample storm: the histogram's memory is its struct size — no
        // heap growth, no eviction bookkeeping — and reads stay coherent.
        let m = GatewayMetrics::new();
        for i in 0..1_000_000u64 {
            m.record_queue_delay_ns(i);
        }
        let snap = m.snapshot();
        assert_eq!(snap.queue_delay.count, 1_000_000);
        assert_eq!(snap.queue_delay.min, 0);
        assert_eq!(snap.queue_delay.max, 999_999);
        // The delay distribution lives in a fixed-size inline array; the
        // type holds no heap-backed sample storage to grow.
        assert!(std::mem::size_of::<faasm_telemetry::HistSnapshot>() <= 64 * 8 + 64);
        let p50 = m.queue_delay_p50_ns();
        let p99 = m.queue_delay_p99_ns();
        assert!(p50 > 0 && p99 >= p50, "p50 {p50} p99 {p99}");
        // Log2 buckets: estimates stay within 2x of the exact percentile.
        assert!((250_000..=1_000_000).contains(&p50), "p50 {p50}");
        assert!((495_000..=1_000_000).contains(&p99), "p99 {p99}");
    }

    #[test]
    fn snapshots_are_coherent_copies() {
        let m = Metrics::new();
        m.record_call(1_000, 5, 3, 0.0);
        m.record_start(StartKind::Cold, 400);
        let snap = m.snapshot();
        assert_eq!(snap.calls, 1);
        assert_eq!(snap.cold_starts, 1);
        assert_eq!(snap.mean_init_ns, 400);
        let mut merged = snap;
        merged.merge(&snap);
        assert_eq!(merged.calls, 2);

        let g = GatewayMetrics::new();
        g.record_admitted();
        g.record_batch(4);
        g.record_shed_expired();
        g.record_queue_delay_ns(77);
        let gs = g.snapshot();
        assert_eq!(gs.admitted, 1);
        assert_eq!(gs.shed_total(), 1);
        assert!((gs.batch_occupancy() - 4.0).abs() < 1e-9);
        assert_eq!(gs.queue_delay.count, 1);
        // The snapshot is frozen: later recording does not change it.
        g.record_admitted();
        assert_eq!(gs.admitted, 1);
    }

    #[test]
    fn percentile_nearest_rank() {
        let samples: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&samples, 0.0), 1);
        assert_eq!(percentile(&samples, 0.5), 51, "round half away from zero");
        assert_eq!(percentile(&samples, 0.99), 99);
        assert_eq!(percentile(&samples, 1.0), 100);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.9), 7);
    }
}
