//! Runtime metrics: the measurements behind the paper's evaluation.
//!
//! * **Billable memory** (Fig. 6c): "the product of the peak function memory
//!   multiplied by the number and runtime of functions, in units of
//!   GB-seconds ... all memory measurements include the containers/Faaslets
//!   and their state." Faaslets are charged their PSS (shared state divided
//!   among sharers), which is exactly what makes FAASM's line flat.
//! * **Initialisation times** (Tab. 3, Fig. 10): cold/warm/restore paths are
//!   timed separately.
//! * **CPU cycles** (Tab. 3): total interpreter fuel.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// Which path created a Faaslet for a call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartKind {
    /// Reused an idle warm Faaslet.
    Warm,
    /// Built from scratch (instantiate + initialise).
    Cold,
    /// Restored from a Proto-Faaslet snapshot.
    ProtoRestore,
}

/// Aggregated runtime metrics for one instance (or summed cluster-wide).
#[derive(Debug, Default)]
pub struct Metrics {
    calls: AtomicU64,
    warm_starts: AtomicU64,
    cold_starts: AtomicU64,
    proto_restores: AtomicU64,
    forwarded: AtomicU64,
    exec_ns: AtomicU64,
    fuel: AtomicU64,
    /// Σ (pss_bytes × duration_ns) per call; converted to GB-s on read.
    billable_byte_ns: Mutex<f64>,
    init_ns: Mutex<Vec<u64>>,
}

impl Metrics {
    /// Fresh zeroed metrics.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Record a completed call.
    pub fn record_call(&self, exec_ns: u64, fuel: u64, pss_bytes: f64) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.exec_ns.fetch_add(exec_ns, Ordering::Relaxed);
        self.fuel.fetch_add(fuel, Ordering::Relaxed);
        *self.billable_byte_ns.lock() += pss_bytes * exec_ns as f64;
    }

    /// Record how a Faaslet was obtained and how long that took.
    pub fn record_start(&self, kind: StartKind, init_ns: u64) {
        match kind {
            StartKind::Warm => {
                self.warm_starts.fetch_add(1, Ordering::Relaxed);
            }
            StartKind::Cold => {
                self.cold_starts.fetch_add(1, Ordering::Relaxed);
                self.init_ns.lock().push(init_ns);
            }
            StartKind::ProtoRestore => {
                self.proto_restores.fetch_add(1, Ordering::Relaxed);
                self.init_ns.lock().push(init_ns);
            }
        }
    }

    /// Record a call forwarded to another host.
    pub fn record_forward(&self) {
        self.forwarded.fetch_add(1, Ordering::Relaxed);
    }

    /// Completed calls.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Warm-start count.
    pub fn warm_starts(&self) -> u64 {
        self.warm_starts.load(Ordering::Relaxed)
    }

    /// Cold-start count (full instantiations).
    pub fn cold_starts(&self) -> u64 {
        self.cold_starts.load(Ordering::Relaxed)
    }

    /// Proto-Faaslet restore count.
    pub fn proto_restores(&self) -> u64 {
        self.proto_restores.load(Ordering::Relaxed)
    }

    /// Calls forwarded to other hosts.
    pub fn forwarded(&self) -> u64 {
        self.forwarded.load(Ordering::Relaxed)
    }

    /// Total guest execution time in nanoseconds.
    pub fn exec_ns(&self) -> u64 {
        self.exec_ns.load(Ordering::Relaxed)
    }

    /// Total interpreter fuel (the CPU-cycles analogue of Tab. 3).
    pub fn fuel(&self) -> u64 {
        self.fuel.load(Ordering::Relaxed)
    }

    /// Billable memory in GB-seconds (Fig. 6c).
    pub fn billable_gb_seconds(&self) -> f64 {
        *self.billable_byte_ns.lock() / 1e18
    }

    /// Initialisation times (cold + proto restores), nanoseconds.
    pub fn init_times_ns(&self) -> Vec<u64> {
        self.init_ns.lock().clone()
    }

    /// Mean initialisation time in nanoseconds (0 when none recorded).
    pub fn mean_init_ns(&self) -> u64 {
        let times = self.init_ns.lock();
        if times.is_empty() {
            return 0;
        }
        times.iter().sum::<u64>() / times.len() as u64
    }
}

/// Compute a latency percentile (0.0–1.0) from a sample set.
///
/// Returns 0 for empty input. Uses nearest-rank on a sorted copy.
pub fn percentile(samples: &[u64], p: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((p.clamp(0.0, 1.0)) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_accounting() {
        let m = Metrics::new();
        m.record_call(1_000_000, 500, 1e9); // 1 GB for 1 ms
        m.record_call(1_000_000, 300, 1e9);
        assert_eq!(m.calls(), 2);
        assert_eq!(m.fuel(), 800);
        assert_eq!(m.exec_ns(), 2_000_000);
        // 2 × (1 GB × 1 ms) = 0.002 GB-s.
        assert!((m.billable_gb_seconds() - 0.002).abs() < 1e-9);
    }

    #[test]
    fn start_kinds() {
        let m = Metrics::new();
        m.record_start(StartKind::Warm, 10);
        m.record_start(StartKind::Cold, 1000);
        m.record_start(StartKind::ProtoRestore, 100);
        assert_eq!(m.warm_starts(), 1);
        assert_eq!(m.cold_starts(), 1);
        assert_eq!(m.proto_restores(), 1);
        // Warm starts do not contribute init samples.
        assert_eq!(m.init_times_ns().len(), 2);
        assert_eq!(m.mean_init_ns(), 550);
        m.record_forward();
        assert_eq!(m.forwarded(), 1);
    }

    #[test]
    fn percentile_nearest_rank() {
        let samples: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&samples, 0.0), 1);
        assert_eq!(percentile(&samples, 0.5), 51, "round half away from zero");
        assert_eq!(percentile(&samples, 0.99), 99);
        assert_eq!(percentile(&samples, 1.0), 100);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.9), 7);
    }
}
