//! Runtime metrics: the measurements behind the paper's evaluation.
//!
//! * **Billable memory** (Fig. 6c): "the product of the peak function memory
//!   multiplied by the number and runtime of functions, in units of
//!   GB-seconds ... all memory measurements include the containers/Faaslets
//!   and their state." Faaslets are charged their PSS (shared state divided
//!   among sharers), which is exactly what makes FAASM's line flat.
//! * **Initialisation times** (Tab. 3, Fig. 10): cold/warm/restore paths are
//!   timed separately.
//! * **CPU cycles** (Tab. 3): total interpreter fuel.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// Which path created a Faaslet for a call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartKind {
    /// Reused an idle warm Faaslet.
    Warm,
    /// Built from scratch (instantiate + initialise).
    Cold,
    /// Restored from a Proto-Faaslet snapshot.
    ProtoRestore,
}

/// Aggregated runtime metrics for one instance (or summed cluster-wide).
#[derive(Debug, Default)]
pub struct Metrics {
    calls: AtomicU64,
    warm_starts: AtomicU64,
    cold_starts: AtomicU64,
    proto_restores: AtomicU64,
    forwarded: AtomicU64,
    exec_ns: AtomicU64,
    fuel: AtomicU64,
    /// Σ (pss_bytes × duration_ns) per call; converted to GB-s on read.
    billable_byte_ns: Mutex<f64>,
    init_ns: Mutex<Vec<u64>>,
}

impl Metrics {
    /// Fresh zeroed metrics.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Record a completed call.
    pub fn record_call(&self, exec_ns: u64, fuel: u64, pss_bytes: f64) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.exec_ns.fetch_add(exec_ns, Ordering::Relaxed);
        self.fuel.fetch_add(fuel, Ordering::Relaxed);
        *self.billable_byte_ns.lock() += pss_bytes * exec_ns as f64;
    }

    /// Record how a Faaslet was obtained and how long that took.
    pub fn record_start(&self, kind: StartKind, init_ns: u64) {
        match kind {
            StartKind::Warm => {
                self.warm_starts.fetch_add(1, Ordering::Relaxed);
            }
            StartKind::Cold => {
                self.cold_starts.fetch_add(1, Ordering::Relaxed);
                self.init_ns.lock().push(init_ns);
            }
            StartKind::ProtoRestore => {
                self.proto_restores.fetch_add(1, Ordering::Relaxed);
                self.init_ns.lock().push(init_ns);
            }
        }
    }

    /// Record a call forwarded to another host.
    pub fn record_forward(&self) {
        self.forwarded.fetch_add(1, Ordering::Relaxed);
    }

    /// Completed calls.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Warm-start count.
    pub fn warm_starts(&self) -> u64 {
        self.warm_starts.load(Ordering::Relaxed)
    }

    /// Cold-start count (full instantiations).
    pub fn cold_starts(&self) -> u64 {
        self.cold_starts.load(Ordering::Relaxed)
    }

    /// Proto-Faaslet restore count.
    pub fn proto_restores(&self) -> u64 {
        self.proto_restores.load(Ordering::Relaxed)
    }

    /// Calls forwarded to other hosts.
    pub fn forwarded(&self) -> u64 {
        self.forwarded.load(Ordering::Relaxed)
    }

    /// Total guest execution time in nanoseconds.
    pub fn exec_ns(&self) -> u64 {
        self.exec_ns.load(Ordering::Relaxed)
    }

    /// Total interpreter fuel (the CPU-cycles analogue of Tab. 3).
    pub fn fuel(&self) -> u64 {
        self.fuel.load(Ordering::Relaxed)
    }

    /// Billable memory in GB-seconds (Fig. 6c).
    pub fn billable_gb_seconds(&self) -> f64 {
        *self.billable_byte_ns.lock() / 1e18
    }

    /// Initialisation times (cold + proto restores), nanoseconds.
    pub fn init_times_ns(&self) -> Vec<u64> {
        self.init_ns.lock().clone()
    }

    /// Mean initialisation time in nanoseconds (0 when none recorded).
    pub fn mean_init_ns(&self) -> u64 {
        let times = self.init_ns.lock();
        if times.is_empty() {
            return 0;
        }
        times.iter().sum::<u64>() / times.len() as u64
    }
}

/// Ingress-tier metrics: what the gateway in front of a cluster observes.
///
/// Kept here (rather than in `faasm-gateway`) so every metrics consumer —
/// the figures binary, benches, embedders — reads one crate, and so the
/// gateway's numbers compose with [`percentile`] like the runtime's do.
#[derive(Debug, Default)]
pub struct GatewayMetrics {
    admitted: AtomicU64,
    completed: AtomicU64,
    shed_overloaded: AtomicU64,
    shed_ratelimited: AtomicU64,
    shed_expired: AtomicU64,
    batches: AtomicU64,
    batch_items: AtomicU64,
    prewarmed: AtomicU64,
    retired: AtomicU64,
    tier_scaleups: AtomicU64,
    /// Sliding window of the most recent queueing-delay samples (ring
    /// buffer): one sample lands per dispatched request, so an unbounded
    /// Vec would grow by ~100 MB/hour at the bench's sustained rates and
    /// make every percentile read sort the full history.
    queue_delay_ns: Mutex<DelayWindow>,
}

/// Ring buffer of recent delay samples.
#[derive(Debug, Default)]
struct DelayWindow {
    samples: Vec<u64>,
    next: usize,
}

/// Queueing-delay samples retained for percentile reads.
const DELAY_WINDOW: usize = 65_536;

impl GatewayMetrics {
    /// Fresh zeroed metrics.
    pub fn new() -> GatewayMetrics {
        GatewayMetrics::default()
    }

    /// Record a request admitted past admission control.
    pub fn record_admitted(&self) {
        self.admitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a request completed end to end.
    pub fn record_completed(&self) {
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a request shed because its tenant queue was full.
    pub fn record_shed_overloaded(&self) {
        self.shed_overloaded.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a request shed by the tenant's token bucket.
    pub fn record_shed_ratelimited(&self) {
        self.shed_ratelimited.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a request shed because its deadline passed while queued.
    pub fn record_shed_expired(&self) {
        self.shed_expired.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one dispatched batch of `items` requests.
    pub fn record_batch(&self, items: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batch_items.fetch_add(items as u64, Ordering::Relaxed);
    }

    /// Record time a request spent queued before dispatch.
    pub fn record_queue_delay_ns(&self, ns: u64) {
        let mut w = self.queue_delay_ns.lock();
        if w.samples.len() < DELAY_WINDOW {
            w.samples.push(ns);
        } else {
            let slot = w.next;
            w.samples[slot] = ns;
        }
        w.next = (w.next + 1) % DELAY_WINDOW;
    }

    /// Record `n` Faaslets pre-warmed by the autoscaler.
    pub fn record_prewarm(&self, n: usize) {
        self.prewarmed.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Record `n` idle Faaslets retired by the autoscaler.
    pub fn record_retire(&self, n: usize) {
        self.retired.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Record one live state-shard addition driven by tier load.
    pub fn record_tier_scale(&self) {
        self.tier_scaleups.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests admitted past admission control.
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Requests completed end to end.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Requests shed with `Overloaded` (full queue).
    pub fn shed_overloaded(&self) -> u64 {
        self.shed_overloaded.load(Ordering::Relaxed)
    }

    /// Requests shed with `Overloaded` (rate limit).
    pub fn shed_ratelimited(&self) -> u64 {
        self.shed_ratelimited.load(Ordering::Relaxed)
    }

    /// Requests shed with `Expired` (deadline passed in queue).
    pub fn shed_expired(&self) -> u64 {
        self.shed_expired.load(Ordering::Relaxed)
    }

    /// Total requests shed for any reason.
    pub fn shed_total(&self) -> u64 {
        self.shed_overloaded() + self.shed_ratelimited() + self.shed_expired()
    }

    /// Dispatched batches.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Mean requests per dispatched batch (0 when none dispatched).
    pub fn batch_occupancy(&self) -> f64 {
        let b = self.batches.load(Ordering::Relaxed);
        if b == 0 {
            return 0.0;
        }
        self.batch_items.load(Ordering::Relaxed) as f64 / b as f64
    }

    /// Faaslets pre-warmed by the autoscaler.
    pub fn prewarmed(&self) -> u64 {
        self.prewarmed.load(Ordering::Relaxed)
    }

    /// Idle Faaslets retired by the autoscaler.
    pub fn retired(&self) -> u64 {
        self.retired.load(Ordering::Relaxed)
    }

    /// State shards added live by the tier autoscaler.
    pub fn tier_scaleups(&self) -> u64 {
        self.tier_scaleups.load(Ordering::Relaxed)
    }

    /// Queueing-delay percentile in nanoseconds over the most recent
    /// [`DELAY_WINDOW`] samples (0.0–1.0; 0 when empty).
    pub fn queue_delay_percentile_ns(&self, p: f64) -> u64 {
        percentile(&self.queue_delay_ns.lock().samples, p)
    }

    /// p50 queueing delay in nanoseconds.
    pub fn queue_delay_p50_ns(&self) -> u64 {
        self.queue_delay_percentile_ns(0.5)
    }

    /// p99 queueing delay in nanoseconds.
    pub fn queue_delay_p99_ns(&self) -> u64 {
        self.queue_delay_percentile_ns(0.99)
    }
}

/// Compute a latency percentile (0.0–1.0) from a sample set.
///
/// Returns 0 for empty input. Uses nearest-rank on a sorted copy.
pub fn percentile(samples: &[u64], p: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((p.clamp(0.0, 1.0)) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_accounting() {
        let m = Metrics::new();
        m.record_call(1_000_000, 500, 1e9); // 1 GB for 1 ms
        m.record_call(1_000_000, 300, 1e9);
        assert_eq!(m.calls(), 2);
        assert_eq!(m.fuel(), 800);
        assert_eq!(m.exec_ns(), 2_000_000);
        // 2 × (1 GB × 1 ms) = 0.002 GB-s.
        assert!((m.billable_gb_seconds() - 0.002).abs() < 1e-9);
    }

    #[test]
    fn start_kinds() {
        let m = Metrics::new();
        m.record_start(StartKind::Warm, 10);
        m.record_start(StartKind::Cold, 1000);
        m.record_start(StartKind::ProtoRestore, 100);
        assert_eq!(m.warm_starts(), 1);
        assert_eq!(m.cold_starts(), 1);
        assert_eq!(m.proto_restores(), 1);
        // Warm starts do not contribute init samples.
        assert_eq!(m.init_times_ns().len(), 2);
        assert_eq!(m.mean_init_ns(), 550);
        m.record_forward();
        assert_eq!(m.forwarded(), 1);
    }

    #[test]
    fn gateway_metrics_accounting() {
        let m = GatewayMetrics::new();
        m.record_admitted();
        m.record_batch(3);
        m.record_batch(1);
        m.record_shed_overloaded();
        m.record_shed_ratelimited();
        m.record_shed_expired();
        m.record_prewarm(2);
        m.record_retire(1);
        assert_eq!(m.admitted(), 1);
        assert_eq!(m.shed_total(), 3);
        assert_eq!(m.batches(), 2);
        assert!((m.batch_occupancy() - 2.0).abs() < 1e-9);
        assert_eq!(m.prewarmed(), 2);
        assert_eq!(m.retired(), 1);
    }

    #[test]
    fn gateway_delay_window_is_bounded() {
        let m = GatewayMetrics::new();
        // Overfill the ring: old samples must be evicted, reads stay sane.
        for i in 0..(super::DELAY_WINDOW as u64 + 10_000) {
            m.record_queue_delay_ns(i);
        }
        let p100 = m.queue_delay_percentile_ns(1.0);
        let p0 = m.queue_delay_percentile_ns(0.0);
        assert_eq!(p100, super::DELAY_WINDOW as u64 + 9_999);
        assert!(
            p0 >= 10_000,
            "oldest retained sample should be recent, got {p0}"
        );
        assert!(m.queue_delay_p99_ns() >= m.queue_delay_p50_ns());
    }

    #[test]
    fn percentile_nearest_rank() {
        let samples: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&samples, 0.0), 1);
        assert_eq!(percentile(&samples, 0.5), 51, "round half away from zero");
        assert_eq!(percentile(&samples, 0.99), 99);
        assert_eq!(percentile(&samples, 1.0), 100);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.9), 7);
    }
}
