//! FAASM-RS: a Rust reproduction of "Faasm: Lightweight Isolation for
//! Efficient Stateful Serverless Computing" (Shillaker & Pietzuch, USENIX
//! ATC 2020).
//!
//! This meta-crate re-exports the workspace's public surface:
//!
//! * [`core`] — Faaslets, Proto-Faaslets, the host interface and the
//!   cluster runtime (the paper's contribution).
//! * [`fvm`] — the WebAssembly-style software-fault-isolation VM.
//! * [`lang`] — the FL guest-language compiler.
//! * [`mem`] — page-table virtual memory with shared regions and
//!   copy-on-write snapshots.
//! * [`state`] — the two-tier state architecture and distributed data
//!   objects.
//! * [`gateway`] — the multi-tenant ingress tier: admission control,
//!   weighted-fair batching and warm-pool autoscaling in front of the
//!   cluster.
//! * [`net`], [`kvs`], [`vfs`], [`sched`] — the remaining substrates.
//! * [`telemetry`] — distributed tracing and fixed-memory histograms.
//! * [`baseline`] — the container-platform baseline ("Knative").
//! * [`workloads`] — the paper's evaluation workloads.
//!
//! See `README.md` for a quickstart, `DESIGN.md` for the system inventory
//! and substitutions, and `EXPERIMENTS.md` for paper-vs-measured results.

#![warn(missing_docs)]

pub use faasm_baseline as baseline;
pub use faasm_core as core;
pub use faasm_fvm as fvm;
pub use faasm_gateway as gateway;
pub use faasm_kvs as kvs;
pub use faasm_lang as lang;
pub use faasm_mem as mem;
pub use faasm_net as net;
pub use faasm_sched as sched;
pub use faasm_state as state;
pub use faasm_telemetry as telemetry;
pub use faasm_vfs as vfs;
pub use faasm_workloads as workloads;

// The types almost every embedder needs, at the crate root.
pub use faasm_core::{CallResult, CallStatus, Cluster, ClusterConfig, UploadOptions};
pub use faasm_gateway::{
    Gateway, GatewayClient, GatewayConfig, GatewayResponse, GatewayServer, GatewayStatus,
    TenantPolicy,
};
