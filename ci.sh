#!/usr/bin/env bash
# Tier-1 verification plus lint gates; what .github/workflows/ci.yml runs.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release

echo "== cargo test"
cargo test --workspace -q

echo "== remote-ingress example (smoke)"
cargo run --release --example gateway_remote

echo "== live-reshard example (smoke): workload keeps writing while a shard joins"
cargo run --release --example reshard_live

echo "== failover-storm example (smoke): primary killed at R=2, zero lost acked writes"
cargo run --release --example failover_storm

echo "== trace-storm example (smoke): span tree from admission to state and back"
cargo run --release --example trace_storm

echo "== cache-locality example (smoke): zipfian storm, hit rate + zero staleness across a reshard"
cargo run --release --example cache_locality

echo "== coldstart-storm example (smoke): pre-staged 0→N scale-up, warm-restore rate >= 90%"
cargo run --release --example coldstart_storm

echo "== gateway throughput bench, batched mode included (smoke)"
cargo bench -p faasm-bench --bench gateway_throughput -- --test

echo "== state throughput bench, batching + shard scaling (smoke)"
cargo bench -p faasm-bench --bench state_throughput -- --test

echo "== vm dispatch bench, lowered tier must beat the interpreter (smoke)"
cargo bench -p faasm-bench --bench vm_dispatch -- --test

echo "== coldstart bench, one capture + cross-version chunk dedup (smoke)"
cargo bench -p faasm-bench --bench coldstart -- --test

echo "CI OK"
