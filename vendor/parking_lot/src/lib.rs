//! Offline stand-in for the `parking_lot` crate.
//!
//! The container this workspace builds in has no crates.io access, so this
//! shim provides the (small) subset of the `parking_lot` API the workspace
//! uses, implemented over `std::sync`. Poisoning is swallowed — like real
//! `parking_lot`, a panic while holding a lock does not poison it for later
//! users.

use std::fmt;

/// Re-export of the guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Re-export of the guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Re-export of the guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with the `parking_lot` API (no poisoning).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex wrapping `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock with the `parking_lot` API (no poisoning).
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock wrapping `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire a shared read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire an exclusive write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &*g).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

/// A condition variable mirroring `parking_lot::Condvar` for the APIs used.
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Blocks until notified, releasing `guard` while waiting
    /// (parking_lot's in-place signature over std's by-value one).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        replace_guard(guard, |g| self.0.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    /// Like [`Condvar::wait`] with a timeout; returns true if it timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: std::time::Duration) -> bool {
        let mut timed_out = false;
        replace_guard(guard, |g| {
            let (g, res) = self
                .0
                .wait_timeout(g, timeout)
                .unwrap_or_else(|e| e.into_inner());
            timed_out = res.timed_out();
            g
        });
        timed_out
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// Runs `f` on the guard in place. If `f` unwinds, the process aborts rather
/// than risking a double drop of the moved-out guard.
fn replace_guard<'a, T>(
    slot: &mut MutexGuard<'a, T>,
    f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
) {
    struct AbortOnUnwind;
    impl Drop for AbortOnUnwind {
        fn drop(&mut self) {
            std::process::abort();
        }
    }
    unsafe {
        let bomb = AbortOnUnwind;
        let g = std::ptr::read(slot);
        let new = f(g);
        std::ptr::write(slot, new);
        std::mem::forget(bomb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
