//! MPMC channels with the `crossbeam::channel` API.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when all receivers have disconnected.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error returned by [`Sender::try_send`].
pub enum TrySendError<T> {
    /// The channel is bounded and at capacity.
    Full(T),
    /// All receivers have disconnected.
    Disconnected(T),
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("Full(..)"),
            TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("sending on a full channel"),
            TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
        }
    }
}

impl<T> std::error::Error for TrySendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders have disconnected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and all senders have disconnected.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived before the deadline.
    Timeout,
    /// The channel is empty and all senders have disconnected.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
            RecvTimeoutError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    /// Bounded capacity; `usize::MAX` means unbounded.
    cap: usize,
    senders: AtomicUsize,
    receivers: AtomicUsize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Shared<T> {
    fn disconnected_tx(&self) -> bool {
        self.senders.load(Ordering::SeqCst) == 0
    }

    fn disconnected_rx(&self) -> bool {
        self.receivers.load(Ordering::SeqCst) == 0
    }
}

/// The sending half of a channel; cloneable (multi-producer).
pub struct Sender<T>(Arc<Shared<T>>);

/// The receiving half of a channel; cloneable (multi-consumer).
pub struct Receiver<T>(Arc<Shared<T>>);

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

/// Creates an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(usize::MAX)
}

/// Creates a bounded MPMC channel holding at most `cap` messages.
///
/// Unlike crossbeam, `cap == 0` (rendezvous) is approximated by capacity 1.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(cap.max(1))
}

fn with_capacity<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        cap,
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender(Arc::clone(&shared)), Receiver(shared))
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.0.senders.fetch_add(1, Ordering::SeqCst);
        Sender(Arc::clone(&self.0))
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.0.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last sender gone: wake receivers so they observe disconnect.
            let _guard = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            self.0.not_empty.notify_all();
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.0.receivers.fetch_add(1, Ordering::SeqCst);
        Receiver(Arc::clone(&self.0))
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.0.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last receiver gone: wake senders blocked on a full queue.
            let _guard = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            self.0.not_full.notify_all();
        }
    }
}

impl<T> Sender<T> {
    /// Sends `msg`, blocking while the channel is full.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if self.0.disconnected_rx() {
                return Err(SendError(msg));
            }
            if q.len() < self.0.cap {
                q.push_back(msg);
                self.0.not_empty.notify_one();
                return Ok(());
            }
            q = self.0.not_full.wait(q).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Sends `msg` without blocking.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
        if self.0.disconnected_rx() {
            return Err(TrySendError::Disconnected(msg));
        }
        if q.len() >= self.0.cap {
            return Err(TrySendError::Full(msg));
        }
        q.push_back(msg);
        self.0.not_empty.notify_one();
        Ok(())
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.0.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True if no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Receives a message, blocking until one arrives or all senders drop.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = q.pop_front() {
                self.0.not_full.notify_one();
                return Ok(v);
            }
            if self.0.disconnected_tx() {
                return Err(RecvError);
            }
            q = self.0.not_empty.wait(q).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Receives a message, waiting at most `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = q.pop_front() {
                self.0.not_full.notify_one();
                return Ok(v);
            }
            if self.0.disconnected_tx() {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _res) = self
                .0
                .not_empty
                .wait_timeout(q, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            q = guard;
        }
    }

    /// Receives a message without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(v) = q.pop_front() {
            self.0.not_full.notify_one();
            return Ok(v);
        }
        if self.0.disconnected_tx() {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.0.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True if no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A blocking iterator over received messages; ends on disconnect.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }

    /// A non-blocking iterator draining currently queued messages.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { rx: self }
    }
}

/// Blocking iterator returned by [`Receiver::iter`].
pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

/// Non-blocking iterator returned by [`Receiver::try_iter`].
pub struct TryIter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.rx.try_recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn bounded_backpressure() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
    }

    #[test]
    fn disconnect_is_observed() {
        let (tx, rx) = unbounded::<i32>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        let (tx, rx) = unbounded::<i32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn multi_consumer() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        let h = thread::spawn(move || rx2.recv().unwrap());
        tx.send(7u64).unwrap();
        let got = h.join().unwrap();
        assert_eq!(got, 7);
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<i32>();
        let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, RecvTimeoutError::Timeout);
    }
}
