//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel` — multi-producer multi-consumer bounded and
//! unbounded channels with the crossbeam API surface the workspace uses —
//! implemented over `Mutex` + `Condvar`. Semantics match crossbeam where it
//! matters to callers: cloneable `Sender`/`Receiver`, disconnect detection on
//! both ends, and blocking/timeout/non-blocking receive flavours.

pub mod channel;
