//! Offline stand-in for the `rand` crate.
//!
//! Provides the deterministic subset the workloads use: `StdRng` seeded with
//! `seed_from_u64`, and `Rng::gen_range` over integer and float ranges. The
//! generator is splitmix64-seeded xorshift64* — statistically fine for
//! synthetic datasets, not for cryptography.

use std::ops::{Range, RangeInclusive};

/// RNGs constructible from a small seed.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly to produce a `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// The raw generator interface.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A random boolean with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen_f64() < p
    }
}

impl<R: RngCore> Rng for R {}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + (u as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Named RNG implementations, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (xorshift64* here).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 scramble so nearby seeds diverge.
            let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            StdRng {
                state: (z ^ (z >> 31)) | 1,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = a.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            assert_eq!(x, b.gen_range(-1.0..1.0));
            let n = a.gen_range(128..=255u8);
            b.gen_range(128..=255u8);
            assert!(n >= 128);
            let i = a.gen_range(0..17usize);
            b.gen_range(0..17usize);
            assert!(i < 17);
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}
