//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy combinators the workspace's property tests use —
//! ranges, tuples, `any`, `Just`, `prop_map`, `prop_recursive`, `prop_oneof!`
//! and `collection::vec` — over a deterministic per-test PRNG.
//!
//! Failing cases are **minimised with a halving shrinker**: integers halve
//! toward the range origin, vectors halve in length and shrink their
//! elements, tuples shrink one component at a time, and unions try every
//! branch's candidates. `prop_map` values are opaque to the shrinker (the
//! mapping cannot be inverted), so structure generators built with it
//! report the original failing case unshrunk. The minimal input is re-run
//! outside the catch so the test still fails with its real panic.
//!
//! Case count defaults to 32 per property; override with `PROPTEST_CASES`.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

pub mod test_runner {
    //! The deterministic driver behind the [`proptest!`](crate::proptest) macro.

    /// A small deterministic PRNG (xorshift64*).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test name (FNV-1a hash).
        pub fn from_name(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h | 1 }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// A uniform index in `[0, n)`.
        pub fn index(&mut self, n: usize) -> usize {
            (self.next_u64() % n.max(1) as u64) as usize
        }
    }

    /// Number of cases to run per property (env `PROPTEST_CASES`, default 32).
    pub fn cases() -> usize {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(32)
    }
}

use test_runner::TestRng;

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Candidate simplifications of a failing `value`, simplest first.
    /// The default is no candidates (the value is opaque, e.g. `prop_map`
    /// output); combinators that know their structure override this.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }

    /// Whether this strategy could have generated `value`. The default
    /// `true` is safe for opaque strategies; bounded ones override it so
    /// union shrinking never reports a "minimal failing input" outside
    /// the generator's domain.
    fn contains(&self, value: &Self::Value) -> bool {
        let _ = value;
        true
    }

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds recursive values: `f` receives a strategy for "smaller" values
    /// and returns one for values one level deeper. `depth` bounds nesting;
    /// the size hints are accepted for API compatibility.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let deeper = f(cur).boxed();
            cur = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        cur
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A reference-counted, type-erased strategy.
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }

    fn shrink(&self, value: &V) -> Vec<V> {
        self.0.shrink(value)
    }

    fn contains(&self, value: &V) -> bool {
        self.0.contains(value)
    }
}

/// Strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Combinator returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over `options`; panics if empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.index(self.options.len());
        self.options[i].generate(rng)
    }

    fn shrink(&self, value: &V) -> Vec<V> {
        // The generating branch is unknown, so try every branch — but a
        // branch shrinking a value from *another* branch's domain can
        // propose values no branch generates (0..10 halving 95 yields 47);
        // keep only candidates some branch could have produced. Failing
        // candidates are otherwise adopted, not discarded.
        self.options
            .iter()
            .flat_map(|o| o.shrink(value))
            .filter(|c| self.options.iter().any(|o| o.contains(c)))
            .collect()
    }

    fn contains(&self, value: &V) -> bool {
        self.options.iter().any(|o| o.contains(value))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;

    /// Candidate simplifications of `self`, simplest first.
    fn shrink_value(&self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }

            fn shrink_value(&self) -> Vec<$t> {
                let v = *self;
                if v == 0 {
                    return Vec::new();
                }
                // Halve toward zero, then step one toward zero.
                let step = if v as i128 > 0 { v - 1 } else { v + 1 };
                let mut out = vec![0 as $t, v / 2, step];
                out.retain(|c| *c != v);
                out.dedup();
                out
            }
        }
    )*};
}

arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }

    fn shrink_value(&self) -> Vec<bool> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// A strategy for any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        value.shrink_value()
    }
}

/// Halving candidates toward `lo`, in `$t`'s domain via i128 arithmetic.
fn shrink_toward<T: Copy + PartialEq>(lo: i128, v: i128, back: impl Fn(i128) -> T) -> Vec<T> {
    if v == lo {
        return Vec::new();
    }
    let candidates = [lo, lo + (v - lo) / 2, v - 1];
    let mut out: Vec<T> = Vec::new();
    for c in candidates {
        if c != v && !out.iter().any(|x| *x == back(c)) {
            out.push(back(c));
        }
    }
    out
}

macro_rules! strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(self.start as i128, *value as i128, |c| c as $t)
            }

            fn contains(&self, value: &$t) -> bool {
                (self.start..self.end).contains(value)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy range is empty");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(*self.start() as i128, *value as i128, |c| c as $t)
            }

            fn contains(&self, value: &$t) -> bool {
                (*self.start()..=*self.end()).contains(value)
            }
        }
    )*};
}

strategy_for_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! strategy_for_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone,)+
        {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out: Vec<Self::Value> = Vec::new();
                // Shrink one component at a time, holding the rest fixed.
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }

            fn contains(&self, value: &Self::Value) -> bool {
                $(self.$idx.contains(&value.$idx) &&)+ true
            }
        }
    };
}

strategy_for_tuple!(A: 0);
strategy_for_tuple!(A: 0, B: 1);
strategy_for_tuple!(A: 0, B: 1, C: 2);
strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3);
strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

pub mod collection {
    //! Strategies for collections.

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive-exclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A `Vec` of values from `elem`, with length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo).max(1);
            let len = self.size.lo + rng.index(span);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }

        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out: Vec<Vec<S::Value>> = Vec::new();
            // Length halving first (toward the strategy's minimum), then
            // dropping one element, then element-wise shrinks.
            if value.len() > self.size.lo {
                let half = self.size.lo.max(value.len() / 2);
                if half < value.len() {
                    out.push(value[..half].to_vec());
                }
                out.push(value[..value.len() - 1].to_vec());
            }
            for (i, elem) in value.iter().enumerate().take(8) {
                for cand in self.elem.shrink(elem) {
                    let mut next = value.clone();
                    next[i] = cand;
                    out.push(next);
                }
            }
            out
        }

        fn contains(&self, value: &Vec<S::Value>) -> bool {
            value.len() >= self.size.lo
                && value.len() < self.size.hi
                && value.iter().all(|v| self.elem.contains(v))
        }
    }
}

pub mod prop {
    //! The `prop::` namespace mirror (`prop::collection::vec`, ...).

    pub use crate::collection;
}

pub mod prelude {
    //! Everything a property test needs in scope.

    pub use crate::prop;
    pub use crate::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Asserts a condition inside a property (panics the failing case).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

thread_local! {
    /// Whether the *current thread* is inside a shrink loop (its candidate
    /// re-runs panic on purpose; their reports are noise).
    static SILENCE_PANICS: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Install — once per process — a wrapper around the current panic hook
/// that drops reports from threads currently shrinking. Tests run in
/// parallel, so swapping the global hook per shrink would race other
/// properties' restores and swallow unrelated tests' diagnostics;
/// a per-thread flag under one permanent wrapper cannot.
fn install_silenceable_hook() {
    static INSTALL: std::sync::Once = std::sync::Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !SILENCE_PANICS.with(std::cell::Cell::get) {
                prev(info);
            }
        }));
    });
}

/// Drives one property: generate `cases()` inputs, and on the first
/// failure minimise it with [`Strategy::shrink`] (adopting the first
/// still-failing candidate each round, with this thread's per-attempt
/// panics silenced) and return the minimal failing input for the caller
/// to re-run un-caught.
///
/// Returns `None` if every case passed.
pub fn run_property<S>(name: &str, strat: &S, run: impl Fn(&S::Value) -> bool) -> Option<S::Value>
where
    S: Strategy,
{
    let mut rng = TestRng::from_name(name);
    for case in 0..test_runner::cases() {
        let vals = strat.generate(&mut rng);
        if run(&vals) {
            continue;
        }
        install_silenceable_hook();
        SILENCE_PANICS.with(|s| s.set(true));
        let mut cur = vals;
        let mut steps = 0u32;
        let mut budget = 256u32;
        'shrinking: while budget > 0 {
            let mut advanced = false;
            for cand in strat.shrink(&cur) {
                if budget == 0 {
                    break;
                }
                budget -= 1;
                if !run(&cand) {
                    cur = cand;
                    steps += 1;
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                break 'shrinking;
            }
        }
        SILENCE_PANICS.with(|s| s.set(false));
        eprintln!(
            "proptest {name}: case {case} failed; minimised in {steps} shrink step(s), \
             re-running the minimal input:"
        );
        return Some(cur);
    }
    None
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs. A failing
/// case is minimised with the halving shrinker (values must be `Clone`),
/// then re-run outside the catch so the test fails with its real panic.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __strat = ($($strat,)+);
                let __minimal = $crate::run_property(stringify!($name), &__strat, |__vals| {
                    let ($($arg,)+) = __vals.clone();
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                        $body
                    }))
                    .is_ok()
                });
                if let Some(__min) = __minimal {
                    let ($($arg,)+) = __min;
                    $body
                    panic!(
                        "proptest {}: the shrunken case no longer fails (flaky property)",
                        stringify!($name)
                    );
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in -50i32..50, n in 1u8..9, len in any::<u16>()) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!((1..9).contains(&n));
            let _ = len;
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(any::<u8>(), 3..7)) {
            prop_assert!(v.len() >= 3 && v.len() < 7);
        }

        #[test]
        fn oneof_and_map_compose(
            e in prop_oneof![
                Just(0i32),
                (1i32..10, 1i32..10).prop_map(|(a, b)| a * b),
            ]
        ) {
            prop_assert!(e == 0 || (1..=81).contains(&e));
        }
    }

    #[test]
    fn shrinker_minimises_range_failures_to_the_boundary() {
        // "x < 10" fails for x >= 10; the halving shrinker must land on 10.
        let strat = (0i32..1000,);
        let min = crate::run_property("shrinker_range", &strat, |(x,)| *x < 10);
        let (x,) = min.expect("cases in 0..1000 must include a failure");
        assert_eq!(x, 10, "minimal failing input is the boundary");
    }

    #[test]
    fn shrinker_minimises_vec_length() {
        // "len < 3" fails for length >= 3; truncation must reach exactly 3.
        let strat = (prop::collection::vec(any::<u8>(), 0..40),);
        let min = crate::run_property("shrinker_vec", &strat, |(v,)| v.len() < 3);
        let (v,) = min.expect("lengths in 0..40 must include a failure");
        assert_eq!(v.len(), 3, "minimal failing length");
        assert!(v.iter().all(|b| *b == 0), "elements shrink toward zero");
    }

    #[test]
    fn union_shrinking_stays_inside_the_strategy_domain() {
        // 95 fails "x < 90"; the 0..10 branch would halve it to 47, which
        // also fails but is outside both branches — the minimal reported
        // input must be a value the union can actually generate.
        let strat = (prop_oneof![0i32..10, 90i32..100],);
        let min = crate::run_property("shrinker_union_domain", &strat, |(x,)| *x < 90);
        let (x,) = min.expect("values in 90..100 must occur");
        assert_eq!(x, 90, "minimal in-domain failing input");
    }

    #[test]
    fn shrinker_minimises_tuple_components_independently() {
        let strat = ((0u32..100, 0u32..100),);
        let min = crate::run_property("shrinker_tuple", &strat, |((a, b),)| a + b < 50);
        let ((a, b),) = min.expect("sums over 50 must occur");
        assert_eq!(a + b, 50, "minimal failing sum: {a} + {b}");
    }

    #[test]
    fn recursion_is_bounded() {
        #[derive(Debug, Clone)]
        enum T {
            Leaf,
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf => 0,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = Just(T::Leaf).prop_recursive(4, 24, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = crate::test_runner::TestRng::from_name("recursion");
        for _ in 0..200 {
            assert!(depth(&strat.generate(&mut rng)) <= 4);
        }
    }
}
