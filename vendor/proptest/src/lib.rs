//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy combinators the workspace's property tests use —
//! ranges, tuples, `any`, `Just`, `prop_map`, `prop_recursive`, `prop_oneof!`
//! and `collection::vec` — over a deterministic per-test PRNG. There is no
//! shrinking: a failing case panics with the seed so it can be replayed by
//! re-running the test (generation is deterministic per test name).
//!
//! Case count defaults to 32 per property; override with `PROPTEST_CASES`.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

pub mod test_runner {
    //! The deterministic driver behind the [`proptest!`](crate::proptest) macro.

    /// A small deterministic PRNG (xorshift64*).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test name (FNV-1a hash).
        pub fn from_name(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h | 1 }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// A uniform index in `[0, n)`.
        pub fn index(&mut self, n: usize) -> usize {
            (self.next_u64() % n.max(1) as u64) as usize
        }
    }

    /// Number of cases to run per property (env `PROPTEST_CASES`, default 32).
    pub fn cases() -> usize {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(32)
    }
}

use test_runner::TestRng;

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds recursive values: `f` receives a strategy for "smaller" values
    /// and returns one for values one level deeper. `depth` bounds nesting;
    /// the size hints are accepted for API compatibility.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let deeper = f(cur).boxed();
            cur = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        cur
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A reference-counted, type-erased strategy.
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Combinator returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over `options`; panics if empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.index(self.options.len());
        self.options[i].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// A strategy for any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy range is empty");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

strategy_for_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! strategy_for_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

strategy_for_tuple!(A: 0);
strategy_for_tuple!(A: 0, B: 1);
strategy_for_tuple!(A: 0, B: 1, C: 2);
strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3);
strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

pub mod collection {
    //! Strategies for collections.

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive-exclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A `Vec` of values from `elem`, with length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo).max(1);
            let len = self.size.lo + rng.index(span);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prop {
    //! The `prop::` namespace mirror (`prop::collection::vec`, ...).

    pub use crate::collection;
}

pub mod prelude {
    //! Everything a property test needs in scope.

    pub use crate::prop;
    pub use crate::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Asserts a condition inside a property (panics the failing case).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for __case in 0..$crate::test_runner::cases() {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in -50i32..50, n in 1u8..9, len in any::<u16>()) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!((1..9).contains(&n));
            let _ = len;
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(any::<u8>(), 3..7)) {
            prop_assert!(v.len() >= 3 && v.len() < 7);
        }

        #[test]
        fn oneof_and_map_compose(
            e in prop_oneof![
                Just(0i32),
                (1i32..10, 1i32..10).prop_map(|(a, b)| a * b),
            ]
        ) {
            prop_assert!(e == 0 || (1..=81).contains(&e));
        }
    }

    #[test]
    fn recursion_is_bounded() {
        #[derive(Debug, Clone)]
        enum T {
            Leaf,
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf => 0,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = Just(T::Leaf).prop_recursive(4, 24, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = crate::test_runner::TestRng::from_name("recursion");
        for _ in 0..200 {
            assert!(depth(&strat.generate(&mut rng)) <= 4);
        }
    }
}
