//! Offline stand-in for the `criterion` crate.
//!
//! A minimal wall-clock harness with criterion's API shape: benches register
//! through [`Criterion::bench_function`] / [`Criterion::benchmark_group`],
//! are driven by `criterion_group!` + `criterion_main!`, and print mean
//! per-iteration time (plus throughput when declared). Under `cargo test`
//! (cargo passes `--test` to bench binaries) each bench body runs exactly
//! once, so benches double as smoke tests.

use std::time::{Duration, Instant};

/// Drives a single benchmark body; passed to the bench closure.
pub struct Bencher<'a> {
    iters: u64,
    /// Total measured time, read back by the harness.
    elapsed: Duration,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl Bencher<'_> {
    /// Runs `f` for the calibrated number of iterations, timing the batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declared work per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level harness state.
pub struct Criterion {
    test_mode: bool,
    /// Target wall-clock per measurement batch.
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            test_mode,
            measure_for: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        run_one(&id.into(), None, self.test_mode, self.measure_for, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the number of samples (accepted for API compatibility; ignored).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measure_for = d.min(Duration::from_secs(2));
        self
    }

    /// Sets the warm-up time (accepted for API compatibility; ignored).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(
            &full,
            self.throughput,
            self.criterion.test_mode,
            self.criterion.measure_for,
            f,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F>(
    id: &str,
    throughput: Option<Throughput>,
    test_mode: bool,
    measure_for: Duration,
    mut f: F,
) where
    F: FnMut(&mut Bencher<'_>),
{
    if test_mode {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
            _marker: std::marker::PhantomData,
        };
        f(&mut b);
        println!("test bench {id} ... ok");
        return;
    }
    // Calibrate: double the batch until it takes long enough to trust.
    let mut iters = 1u64;
    let mut per_iter;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
            _marker: std::marker::PhantomData,
        };
        f(&mut b);
        per_iter = b.elapsed.as_secs_f64() / iters as f64;
        if b.elapsed >= measure_for || iters >= 1 << 24 {
            break;
        }
        let target = measure_for.as_secs_f64();
        let guess = if per_iter > 0.0 {
            (target / per_iter).ceil() as u64
        } else {
            iters * 2
        };
        iters = guess.clamp(iters + 1, iters * 8);
    }
    let time_str = format_time(per_iter);
    match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            let rate = n as f64 / per_iter;
            println!("{id:<48} time: {time_str:>12}   thrpt: {rate:>14.0} elem/s");
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            let rate = n as f64 / per_iter / (1024.0 * 1024.0);
            println!("{id:<48} time: {time_str:>12}   thrpt: {rate:>10.1} MiB/s");
        }
        _ => println!("{id:<48} time: {time_str:>12}"),
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Collects bench functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running every registered group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
