//! Offline stand-in for the `bytes` crate.
//!
//! Implements the [`Buf`] / [`BufMut`] trait subset the workspace's codecs
//! use, over `&[u8]` readers and `Vec<u8>` writers. Reads past the end panic,
//! matching the real crate's contract.

/// Read side: a cursor over immutable bytes.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Consumes `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// True while bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a little-endian u32.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Reads a little-endian u64.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian i64.
    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }

    /// Reads a little-endian i32.
    fn get_i32_le(&mut self) -> i32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        i32::from_le_bytes(b)
    }

    /// Copies `dst.len()` bytes out, consuming them.
    ///
    /// # Panics
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "Buf: not enough bytes");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "Buf: advance past end");
        *self = &self[cnt..];
    }
}

/// Write side: an append-only byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian i64.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian i32.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u8(7);
        out.put_u32(0xdead_beef);
        out.put_u64_le(42);
        out.put_slice(b"hi");
        let mut r: &[u8] = &out;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32(), 0xdead_beef);
        assert_eq!(r.get_u64_le(), 42);
        let mut buf = [0u8; 2];
        r.copy_to_slice(&mut buf);
        assert_eq!(&buf, b"hi");
        assert!(!r.has_remaining());
    }
}
